#include "obs/metrics_wire.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mivid {

namespace {

// %.17g round-trips doubles exactly; JSON forbids NaN/inf, and metric
// values are finite by construction (observations are finite wall times
// and counts), so a plain format is safe here.
std::string Number(double v) {
  if (!std::isfinite(v)) return "0";
  return StrFormat("%.17g", v);
}

}  // namespace

std::string MetricsSnapshotToWireJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(name).c_str(),
                     Number(value).c_str());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\"%s\":{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s,"
        "\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":[",
        JsonEscape(name).c_str(), static_cast<unsigned long long>(stats.count),
        Number(stats.sum).c_str(), Number(stats.min).c_str(),
        Number(stats.max).c_str(), Number(stats.p50).c_str(),
        Number(stats.p95).c_str(), Number(stats.p99).c_str());
    for (size_t i = 0; i < stats.buckets.size(); ++i) {
      if (i) out += ",";
      out += StrFormat("%llu",
                       static_cast<unsigned long long>(stats.buckets[i]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Result<MetricsSnapshot> MetricsSnapshotFromWireJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("metrics snapshot: not a JSON object");
  }
  MetricsSnapshot snapshot;
  if (const JsonValue* counters = doc.Find("counters")) {
    if (!counters->is_object()) {
      return Status::InvalidArgument("metrics snapshot: counters not object");
    }
    for (const auto& [name, value] : counters->object) {
      if (!value.is_number() || value.number < 0) {
        return Status::InvalidArgument(
            StrFormat("metrics snapshot: counter %s not a non-negative number",
                      name.c_str()));
      }
      snapshot.counters[name] = static_cast<uint64_t>(value.number);
    }
  }
  if (const JsonValue* gauges = doc.Find("gauges")) {
    if (!gauges->is_object()) {
      return Status::InvalidArgument("metrics snapshot: gauges not object");
    }
    for (const auto& [name, value] : gauges->object) {
      if (!value.is_number()) {
        return Status::InvalidArgument(StrFormat(
            "metrics snapshot: gauge %s not a number", name.c_str()));
      }
      snapshot.gauges[name] = value.number;
    }
  }
  if (const JsonValue* histograms = doc.Find("histograms")) {
    if (!histograms->is_object()) {
      return Status::InvalidArgument(
          "metrics snapshot: histograms not object");
    }
    for (const auto& [name, value] : histograms->object) {
      if (!value.is_object()) {
        return Status::InvalidArgument(StrFormat(
            "metrics snapshot: histogram %s not an object", name.c_str()));
      }
      HistogramStats stats;
      auto number = [&value](const char* key, double fallback) {
        const JsonValue* member = value.Find(key);
        return member != nullptr && member->is_number() ? member->number
                                                        : fallback;
      };
      stats.count = static_cast<uint64_t>(number("count", 0));
      stats.sum = number("sum", 0);
      stats.min = number("min", 0);
      stats.max = number("max", 0);
      stats.p50 = number("p50", 0);
      stats.p95 = number("p95", 0);
      stats.p99 = number("p99", 0);
      if (const JsonValue* buckets = value.Find("buckets")) {
        if (!buckets->is_array()) {
          return Status::InvalidArgument(StrFormat(
              "metrics snapshot: histogram %s buckets not an array",
              name.c_str()));
        }
        stats.buckets.reserve(buckets->array.size());
        for (const JsonValue& b : buckets->array) {
          if (!b.is_number() || b.number < 0) {
            return Status::InvalidArgument(StrFormat(
                "metrics snapshot: histogram %s has a bad bucket count",
                name.c_str()));
          }
          stats.buckets.push_back(static_cast<uint64_t>(b.number));
        }
      }
      snapshot.histograms[name] = std::move(stats);
    }
  }
  return snapshot;
}

MetricsSnapshot MergeMetricsSnapshots(
    const std::vector<MetricsSnapshot>& snapshots) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& snapshot : snapshots) {
    for (const auto& [name, value] : snapshot.counters) {
      merged.counters[name] += value;
    }
    for (const auto& [name, value] : snapshot.gauges) {
      merged.gauges[name] += value;
    }
    for (const auto& [name, stats] : snapshot.histograms) {
      HistogramStats& into = merged.histograms[name];
      if (stats.count == 0) {
        // Still materialize the series so the rollup lists it.
        continue;
      }
      if (into.count == 0) {
        into = stats;
        continue;
      }
      into.min = std::min(into.min, stats.min);
      into.max = std::max(into.max, stats.max);
      into.count += stats.count;
      into.sum += stats.sum;
      if (into.buckets.size() < stats.buckets.size()) {
        into.buckets.resize(stats.buckets.size(), 0);
      }
      for (size_t i = 0; i < stats.buckets.size(); ++i) {
        into.buckets[i] += stats.buckets[i];
      }
    }
  }
  for (auto& [name, stats] : merged.histograms) {
    RecomputeHistogramPercentiles(&stats);
  }
  return merged;
}

}  // namespace mivid

#include "retrieval/heuristic.h"

#include <algorithm>

namespace mivid {

double HeuristicInstanceScore(const Vec& flattened, const EventModel& model,
                              size_t base_dim) {
  if (base_dim == 0) return 0.0;
  double best = 0.0;
  for (size_t offset = 0; offset + base_dim <= flattened.size();
       offset += base_dim) {
    double s = 0.0;
    for (size_t f = 0; f < base_dim && f < model.weights.size(); ++f) {
      const double x = flattened[offset + f];
      s += model.weights[f] * x * x;
    }
    best = std::max(best, s);
  }
  return best;
}

double HeuristicBagScore(const MilBag& bag, const EventModel& model,
                         size_t base_dim) {
  double best = 0.0;
  for (const auto& inst : bag.instances) {
    best = std::max(
        best, HeuristicInstanceScore(inst.raw_features, model, base_dim));
  }
  return best;
}

std::vector<ScoredBag> HeuristicRanking(const MilDataset& dataset,
                                        const EventModel& model,
                                        size_t base_dim) {
  std::vector<ScoredBag> ranking;
  ranking.reserve(dataset.size());
  for (const auto& bag : dataset.bags()) {
    ranking.push_back({bag.id, HeuristicBagScore(bag, model, base_dim)});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

std::vector<int> TopIds(const std::vector<ScoredBag>& ranking, size_t n) {
  std::vector<int> ids;
  ids.reserve(std::min(n, ranking.size()));
  for (size_t i = 0; i < ranking.size() && i < n; ++i) {
    ids.push_back(ranking[i].bag_id);
  }
  return ids;
}

}  // namespace mivid

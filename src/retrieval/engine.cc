#include "retrieval/engine.h"

namespace mivid {

Status RetrievalEngine::SetLabels(
    const std::vector<std::pair<int, BagLabel>>& labels) {
  for (const auto& [bag_id, label] : labels) {
    MIVID_RETURN_IF_ERROR(dataset_->SetLabel(bag_id, label));
  }
  return Status::OK();
}

const RunSummary& RetrievalEngine::run_summary() const {
  static const RunSummary kEmpty;
  return kEmpty;
}

}  // namespace mivid

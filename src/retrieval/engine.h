// RetrievalEngine: the common interface every relevance-feedback ranker
// implements (the proposed MIL one-class SVM and the four baselines).
//
// The interactive loop (RetrievalSession, eval/experiment.cc, and the
// mivid_serve daemon) drives engines exclusively through this interface:
// labels go in via SetLabels, Retrain absorbs them, Rank produces the
// next round's ordering. Retrain is cold-start aware — until an engine's
// own preconditions are met (e.g. MI-SVM needs a negative label) it
// returns OK without training, and the caller keeps ranking with the
// initial-query heuristic while trained() stays false.

#ifndef MIVID_RETRIEVAL_ENGINE_H_
#define MIVID_RETRIEVAL_ENGINE_H_

#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mil/dataset.h"
#include "retrieval/heuristic.h"

namespace mivid {

/// Training statistics for one relevance-feedback round, recorded by
/// engines that train models so library users get the numbers without
/// scraping logs.
struct MilRoundStats {
  int round = 0;               ///< 1-based feedback round (Learn() call)
  double nu = 0.0;             ///< Eq. 9 delta actually used
  double sigma = 0.0;          ///< RBF bandwidth after auto-tuning
  size_t relevant_bags = 0;    ///< h: bags labeled relevant
  size_t training_size = 0;    ///< H: flattened training instances
  size_t support_vectors = 0;
  int smo_iterations = 0;
  /// Fraction of training instances the trained model rejects; Eq. 9
  /// targets this at delta, so the gap measures how well nu was realized.
  double achieved_outlier_fraction = 0.0;
  uint64_t cache_hits = 0;     ///< kernel-cache hits this round
  uint64_t cache_misses = 0;
  double learn_seconds = 0.0;
};

/// Aggregated per-session statistics surfaced by run_summary().
struct RunSummary {
  std::vector<MilRoundStats> rounds;
  size_t rank_calls = 0;
  double total_rank_seconds = 0.0;
};

/// Abstract relevance-feedback ranker over a labeled MilDataset.
class RetrievalEngine {
 public:
  /// `dataset` must outlive the engine; the engine owns the labels on it
  /// (SetLabels) but never adds or removes bags.
  explicit RetrievalEngine(MilDataset* dataset) : dataset_(dataset) {}
  virtual ~RetrievalEngine() = default;

  /// The registry key this engine was built under ("milrf", ...).
  virtual std::string_view name() const = 0;

  /// Applies feedback labels to the corpus. Labels accumulate across
  /// calls; re-labeling a bag overwrites its previous label. Fails with
  /// NotFound on an unknown bag id (earlier pairs stay applied).
  Status SetLabels(const std::vector<std::pair<int, BagLabel>>& labels);

  /// Retrains from the accumulated labels. Returns OK without training
  /// while the engine's cold-start preconditions are not met yet.
  virtual Status Retrain() = 0;

  /// True once Retrain() has produced a usable ranking model. Callers
  /// fall back to the initial-query heuristic while this is false.
  virtual bool trained() const = 0;

  /// Full ranking of every bag, best first (requires trained()).
  virtual std::vector<ScoredBag> Rank() const = 0;

  /// The first `k` entries of Rank(): same bags, same scores, same order
  /// (ties and all), but engines may use early termination to avoid
  /// computing full decision values for bags that provably cannot reach
  /// the top k. The default simply truncates a full Rank().
  virtual std::vector<ScoredBag> RankTopK(size_t k) const {
    std::vector<ScoredBag> ranking = Rank();
    if (k < ranking.size()) ranking.resize(k);
    return ranking;
  }

  /// Per-round training stats plus ranking totals; engines without
  /// instrumentation return an empty summary.
  virtual const RunSummary& run_summary() const;

  const MilDataset& dataset() const { return *dataset_; }

 protected:
  MilDataset* dataset_;
};

}  // namespace mivid

#endif  // MIVID_RETRIEVAL_ENGINE_H_

// Active selection of the windows shown for feedback.
//
// The paper always displays the top-n ranked VSs. Labeling only
// already-confident results wastes part of the user's effort: windows
// near the decision boundary carry more information. This extension mixes
// the display set: an exploit share of top-ranked bags plus an explore
// share of the most uncertain ones (smallest |decision value|), ignoring
// bags the user already labeled. `bench/ext_active_feedback` measures the
// effect on convergence.

#ifndef MIVID_RETRIEVAL_ACTIVE_SELECTION_H_
#define MIVID_RETRIEVAL_ACTIVE_SELECTION_H_

#include <vector>

#include "mil/dataset.h"
#include "retrieval/heuristic.h"

namespace mivid {

/// Display-set strategy.
struct ActiveSelectionOptions {
  double explore_fraction = 0.3;  ///< share of slots given to uncertain bags
  bool skip_labeled = true;       ///< don't re-show labeled bags
};

/// Builds the n-bag display set from a ranking: the top (1-e)*n ranked
/// bags, then the e*n bags with scores closest to `boundary` (e.g. 0 for
/// an SVM decision value). Falls back to pure ranking when not enough
/// unlabeled bags exist.
std::vector<int> SelectForFeedback(const std::vector<ScoredBag>& ranking,
                                   const MilDataset& dataset, size_t n,
                                   double boundary,
                                   const ActiveSelectionOptions& options);

}  // namespace mivid

#endif  // MIVID_RETRIEVAL_ACTIVE_SELECTION_H_

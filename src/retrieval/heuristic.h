// Initial-query heuristic ranking (paper Sec. 5.3).
//
// Before any feedback exists, every VS is scored against the queried event
// model: a sampling point scores the (weighted) square sum of its
// normalized features, a TS scores its best point, and a VS scores its
// best TS. Results are returned in descending score order.
//
// Instance features here are the flattened per-window vectors stored in a
// MilDataset: `base_dim` consecutive values per checkpoint.

#ifndef MIVID_RETRIEVAL_HEURISTIC_H_
#define MIVID_RETRIEVAL_HEURISTIC_H_

#include <vector>

#include "event/event_model.h"
#include "mil/dataset.h"

namespace mivid {

/// A bag id with its relevance score.
struct ScoredBag {
  int bag_id = -1;
  double score = 0.0;
};

/// Per-checkpoint square-sum score maximized over the checkpoints of a
/// flattened instance vector. The paper computes this over the raw
/// (unnormalized) property vectors; pass MilInstance::raw_features.
double HeuristicInstanceScore(const Vec& flattened, const EventModel& model,
                              size_t base_dim);

/// S_v = max over instances of the instance score (raw feature space).
double HeuristicBagScore(const MilBag& bag, const EventModel& model,
                         size_t base_dim);

/// Ranks every bag in the dataset, descending score (ties by bag id).
std::vector<ScoredBag> HeuristicRanking(const MilDataset& dataset,
                                        const EventModel& model,
                                        size_t base_dim);

/// First `n` bag ids of a ranking.
std::vector<int> TopIds(const std::vector<ScoredBag>& ranking, size_t n);

}  // namespace mivid

#endif  // MIVID_RETRIEVAL_HEURISTIC_H_

// String-keyed factory for RetrievalEngine implementations.
//
// Every learner the repo implements is constructible by name, so the
// serving layer, the CLI (--engine) and the experiment harness select a
// method per session/run without compile-time coupling to the concrete
// classes:
//   "milrf"    MIL one-class SVM (the paper's proposed method)
//   "weighted" weighted relevance feedback (Sec. 6.2 baseline)
//   "rocchio"  Rocchio query-point movement
//   "misvm"    MI-SVM (Andrews et al.)
//   "cknn"     citation-kNN (Wang & Zucker)

#ifndef MIVID_RETRIEVAL_ENGINE_REGISTRY_H_
#define MIVID_RETRIEVAL_ENGINE_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/rocchio.h"
#include "baseline/weighted_rf.h"
#include "common/status.h"
#include "mil/citation_knn.h"
#include "mil/mi_svm.h"
#include "retrieval/engine.h"
#include "retrieval/mil_rf_engine.h"

namespace mivid {

/// Per-engine configuration bundle. Each engine consumes only its own
/// member; the corpus feature dimension lives inside the option structs
/// that need one (mil.base_dim, weighted.base_dim).
struct EngineConfig {
  MilRfOptions mil;
  WeightedRfOptions weighted;
  RocchioOptions rocchio;
  MiSvmOptions misvm;
  CitationKnnOptions cknn;
};

/// One registry row.
struct EngineRegistryEntry {
  const char* name;         ///< registry key
  const char* description;  ///< one-line help text
  std::unique_ptr<RetrievalEngine> (*make)(MilDataset* dataset,
                                           const EngineConfig& config);
};

/// The full registry, in canonical order (proposed method first).
const std::vector<EngineRegistryEntry>& EngineRegistry();

/// True when `name` is a registered engine key.
bool EngineRegistered(std::string_view name);

/// Registered keys in registry order.
std::vector<std::string> RegisteredEngineNames();

/// Builds the engine registered under `name` over `dataset` (which must
/// outlive the engine). InvalidArgument on an unknown name.
Result<std::unique_ptr<RetrievalEngine>> MakeRetrievalEngine(
    std::string_view name, MilDataset* dataset, const EngineConfig& config);

}  // namespace mivid

#endif  // MIVID_RETRIEVAL_ENGINE_REGISTRY_H_

#include "retrieval/engine_registry.h"

#include "common/string_util.h"

namespace mivid {

const std::vector<EngineRegistryEntry>& EngineRegistry() {
  static const std::vector<EngineRegistryEntry> kRegistry = {
      {"milrf", "MIL one-class SVM relevance feedback (proposed method)",
       [](MilDataset* dataset, const EngineConfig& config)
           -> std::unique_ptr<RetrievalEngine> {
         return std::make_unique<MilRfEngine>(dataset, config.mil);
       }},
      {"weighted", "weighted relevance feedback (inverse-stddev weights)",
       [](MilDataset* dataset, const EngineConfig& config)
           -> std::unique_ptr<RetrievalEngine> {
         return std::make_unique<WeightedRfEngine>(dataset, config.weighted);
       }},
      {"rocchio", "Rocchio query-point movement",
       [](MilDataset* dataset, const EngineConfig& config)
           -> std::unique_ptr<RetrievalEngine> {
         return std::make_unique<RocchioEngine>(dataset, config.rocchio);
       }},
      {"misvm", "MI-SVM witness-selection binary SVM",
       [](MilDataset* dataset, const EngineConfig& config)
           -> std::unique_ptr<RetrievalEngine> {
         return std::make_unique<MiSvmEngine>(dataset, config.misvm);
       }},
      {"cknn", "citation-kNN over Hausdorff bag distances",
       [](MilDataset* dataset, const EngineConfig& config)
           -> std::unique_ptr<RetrievalEngine> {
         return std::make_unique<CitationKnnEngine>(dataset, config.cknn);
       }},
  };
  return kRegistry;
}

bool EngineRegistered(std::string_view name) {
  for (const auto& entry : EngineRegistry()) {
    if (name == entry.name) return true;
  }
  return false;
}

std::vector<std::string> RegisteredEngineNames() {
  std::vector<std::string> names;
  names.reserve(EngineRegistry().size());
  for (const auto& entry : EngineRegistry()) names.emplace_back(entry.name);
  return names;
}

Result<std::unique_ptr<RetrievalEngine>> MakeRetrievalEngine(
    std::string_view name, MilDataset* dataset, const EngineConfig& config) {
  for (const auto& entry : EngineRegistry()) {
    if (name == entry.name) return entry.make(dataset, config);
  }
  return Status::InvalidArgument(
      StrFormat("unknown retrieval engine '%.*s' (registered: %s)",
                static_cast<int>(name.size()), name.data(),
                Join(RegisteredEngineNames(), ", ").c_str()));
}

}  // namespace mivid

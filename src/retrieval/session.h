// RetrievalSession: the interactive loop of Fig. 6/7.
//
// Round 0 ranks by the event-model heuristic. Each SubmitFeedback call
// records bag labels (cumulative across rounds), retrains the session's
// RetrievalEngine, and advances to the next round, whose ranking comes
// from the engine once it has trained. The engine is selected by name
// from the registry ("milrf" by default) or injected via a factory, so
// the session drives any learner through the same protocol. This is the
// object a UI (or the evaluation oracle, or the mivid_serve daemon)
// drives.

#ifndef MIVID_RETRIEVAL_SESSION_H_
#define MIVID_RETRIEVAL_SESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "retrieval/engine_registry.h"

namespace mivid {

/// Session configuration.
struct SessionOptions {
  size_t top_n = 20;     ///< results shown per round (paper: 20)
  std::string engine = "milrf";  ///< registry key of the learner
  MilRfOptions mil;      ///< "milrf" config; mil.base_dim is also the
                         ///< corpus feature dimension the heuristic and
                         ///< the weighted engine use
  WeightedRfOptions weighted;
  RocchioOptions rocchio;
  MiSvmOptions misvm;
  CitationKnnOptions cknn;
  EventModel query_model;  ///< initial-query heuristic (default: accident)

  /// The per-engine bundle the registry consumes, with the corpus
  /// dimension propagated into every engine that needs it.
  EngineConfig engine_config() const;
};

/// Builds an engine over the session's dataset; used to inject a custom
/// (e.g. unregistered) engine into RetrievalSession.
using EngineFactory =
    std::function<std::unique_ptr<RetrievalEngine>(MilDataset*)>;

/// One user's interactive retrieval session over a corpus.
class RetrievalSession {
 public:
  /// The session owns a copy of the dataset (labels are per-session
  /// state) and builds its engine from options.engine; an unknown name
  /// falls back to "milrf" (use Create() to surface the error instead).
  RetrievalSession(MilDataset dataset, SessionOptions options);

  /// Same, but the engine comes from `factory` (options.engine ignored).
  RetrievalSession(MilDataset dataset, SessionOptions options,
                   const EngineFactory& factory);

  /// Validating constructor: InvalidArgument on an unknown engine name.
  static Result<RetrievalSession> Create(MilDataset dataset,
                                         SessionOptions options);

  /// Full ranking for the current round (heuristic at round 0, the
  /// engine once it has trained).
  std::vector<ScoredBag> CurrentRanking() const;

  /// The first `k` entries of CurrentRanking() — same bags, scores, and
  /// order — letting a trained engine early-terminate bags that provably
  /// miss the top k (see RetrievalEngine::RankTopK).
  std::vector<ScoredBag> CurrentTopK(size_t k) const;

  /// The top-n bag ids presented to the user this round.
  std::vector<int> TopBags() const;

  /// Applies the user's labels for this round's results and retrains.
  /// Labels accumulate; re-labeling a bag overwrites its previous label.
  /// Until the engine's cold-start preconditions are met (e.g. no bag
  /// labeled relevant yet), the session stays on the heuristic ranking
  /// (matching the paper's cold-start behavior).
  Status SubmitFeedback(const std::vector<std::pair<int, BagLabel>>& labels);

  /// Exports the session's accumulated feedback (for persistence).
  std::vector<std::pair<int, BagLabel>> LabeledBags() const;

  /// Re-applies a previously exported feedback set and retrains once;
  /// `round` restores the round counter.
  Status Restore(const std::vector<std::pair<int, BagLabel>>& labels,
                 int round);

  int round() const { return round_; }
  size_t top_n() const { return options_.top_n; }
  const MilDataset& dataset() const { return *dataset_; }
  const RetrievalEngine& engine() const { return *engine_; }

 private:
  // Held behind stable pointers so the session stays movable: the engine
  // references the dataset by address.
  std::unique_ptr<MilDataset> dataset_;
  SessionOptions options_;
  std::unique_ptr<RetrievalEngine> engine_;
  int round_ = 0;
};

}  // namespace mivid

#endif  // MIVID_RETRIEVAL_SESSION_H_

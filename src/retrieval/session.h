// RetrievalSession: the interactive loop of Fig. 6/7.
//
// Round 0 ranks by the event-model heuristic. Each SubmitFeedback call
// records bag labels (cumulative across rounds), retrains the MIL engine,
// and advances to the next round, whose ranking comes from the One-class
// SVM. This is the object a UI (or the evaluation oracle) drives.

#ifndef MIVID_RETRIEVAL_SESSION_H_
#define MIVID_RETRIEVAL_SESSION_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "retrieval/mil_rf_engine.h"

namespace mivid {

/// Session configuration.
struct SessionOptions {
  size_t top_n = 20;     ///< results shown per round (paper: 20)
  MilRfOptions mil;
  EventModel query_model;  ///< initial-query heuristic (default: accident)
};

/// One user's interactive retrieval session over a corpus.
class RetrievalSession {
 public:
  /// The session owns a copy of the dataset (labels are per-session state).
  RetrievalSession(MilDataset dataset, SessionOptions options);

  /// Full ranking for the current round (heuristic at round 0, SVM after).
  std::vector<ScoredBag> CurrentRanking() const;

  /// The top-n bag ids presented to the user this round.
  std::vector<int> TopBags() const;

  /// Applies the user's labels for this round's results and retrains.
  /// Labels accumulate; re-labeling a bag overwrites its previous label.
  /// If no bag has ever been labeled relevant, the session stays on the
  /// heuristic ranking (matching the paper's cold-start behavior).
  Status SubmitFeedback(const std::vector<std::pair<int, BagLabel>>& labels);

  /// Exports the session's accumulated feedback (for persistence).
  std::vector<std::pair<int, BagLabel>> LabeledBags() const;

  /// Re-applies a previously exported feedback set and retrains once;
  /// `round` restores the round counter.
  Status Restore(const std::vector<std::pair<int, BagLabel>>& labels,
                 int round);

  int round() const { return round_; }
  const MilDataset& dataset() const { return *dataset_; }
  const MilRfEngine& engine() const { return *engine_; }

 private:
  // Held behind stable pointers so the session stays movable: the engine
  // references the dataset by address.
  std::unique_ptr<MilDataset> dataset_;
  SessionOptions options_;
  std::unique_ptr<MilRfEngine> engine_;
  int round_ = 0;
};

}  // namespace mivid

#endif  // MIVID_RETRIEVAL_SESSION_H_

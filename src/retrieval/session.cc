#include "retrieval/session.h"

namespace mivid {

RetrievalSession::RetrievalSession(MilDataset dataset, SessionOptions options)
    : dataset_(std::make_unique<MilDataset>(std::move(dataset))),
      options_(std::move(options)),
      engine_(std::make_unique<MilRfEngine>(dataset_.get(), options_.mil)) {
  if (options_.query_model.weights.empty()) {
    options_.query_model = EventModel::Accident(options_.mil.base_dim);
  }
}

std::vector<ScoredBag> RetrievalSession::CurrentRanking() const {
  if (engine_->trained()) return engine_->Rank();
  return HeuristicRanking(*dataset_, options_.query_model,
                          options_.mil.base_dim);
}

std::vector<int> RetrievalSession::TopBags() const {
  return TopIds(CurrentRanking(), options_.top_n);
}

std::vector<std::pair<int, BagLabel>> RetrievalSession::LabeledBags() const {
  std::vector<std::pair<int, BagLabel>> labels;
  for (const auto& bag : dataset_->bags()) {
    if (bag.label != BagLabel::kUnlabeled) {
      labels.emplace_back(bag.id, bag.label);
    }
  }
  return labels;
}

Status RetrievalSession::Restore(
    const std::vector<std::pair<int, BagLabel>>& labels, int round) {
  for (const auto& [bag_id, label] : labels) {
    MIVID_RETURN_IF_ERROR(dataset_->SetLabel(bag_id, label));
  }
  round_ = round;
  if (dataset_->CountLabel(BagLabel::kRelevant) == 0) return Status::OK();
  return engine_->Learn();
}

Status RetrievalSession::SubmitFeedback(
    const std::vector<std::pair<int, BagLabel>>& labels) {
  for (const auto& [bag_id, label] : labels) {
    MIVID_RETURN_IF_ERROR(dataset_->SetLabel(bag_id, label));
  }
  ++round_;
  if (dataset_->CountLabel(BagLabel::kRelevant) == 0) {
    // Nothing to learn from yet; remain on the heuristic ranking.
    return Status::OK();
  }
  return engine_->Learn();
}

}  // namespace mivid

#include "retrieval/session.h"

namespace mivid {

EngineConfig SessionOptions::engine_config() const {
  EngineConfig config;
  config.mil = mil;
  config.weighted = weighted;
  config.rocchio = rocchio;
  config.misvm = misvm;
  config.cknn = cknn;
  // One corpus, one feature dimension: mil.base_dim is authoritative
  // (QueryEngine and the harness set it from the extracted features).
  config.weighted.base_dim = mil.base_dim;
  return config;
}

RetrievalSession::RetrievalSession(MilDataset dataset, SessionOptions options)
    : RetrievalSession(std::move(dataset), std::move(options),
                       EngineFactory()) {}

RetrievalSession::RetrievalSession(MilDataset dataset, SessionOptions options,
                                   const EngineFactory& factory)
    : dataset_(std::make_unique<MilDataset>(std::move(dataset))),
      options_(std::move(options)) {
  if (options_.query_model.weights.empty()) {
    options_.query_model = EventModel::Accident(options_.mil.base_dim);
  }
  if (factory) {
    engine_ = factory(dataset_.get());
  } else {
    Result<std::unique_ptr<RetrievalEngine>> engine = MakeRetrievalEngine(
        options_.engine, dataset_.get(), options_.engine_config());
    if (!engine.ok()) {
      // Constructors cannot report; keep the session usable on the
      // paper's default method. Create() rejects unknown names up front.
      engine = MakeRetrievalEngine("milrf", dataset_.get(),
                                   options_.engine_config());
    }
    engine_ = std::move(engine).value();
  }
}

Result<RetrievalSession> RetrievalSession::Create(MilDataset dataset,
                                                  SessionOptions options) {
  if (!EngineRegistered(options.engine)) {
    return Status::InvalidArgument(
        "unknown retrieval engine '" + options.engine + "'");
  }
  return RetrievalSession(std::move(dataset), std::move(options));
}

std::vector<ScoredBag> RetrievalSession::CurrentRanking() const {
  if (engine_->trained()) return engine_->Rank();
  return HeuristicRanking(*dataset_, options_.query_model,
                          options_.mil.base_dim);
}

std::vector<ScoredBag> RetrievalSession::CurrentTopK(size_t k) const {
  if (engine_->trained()) return engine_->RankTopK(k);
  std::vector<ScoredBag> ranking = HeuristicRanking(
      *dataset_, options_.query_model, options_.mil.base_dim);
  if (k < ranking.size()) ranking.resize(k);
  return ranking;
}

std::vector<int> RetrievalSession::TopBags() const {
  return TopIds(CurrentRanking(), options_.top_n);
}

std::vector<std::pair<int, BagLabel>> RetrievalSession::LabeledBags() const {
  std::vector<std::pair<int, BagLabel>> labels;
  for (const auto& bag : dataset_->bags()) {
    if (bag.label != BagLabel::kUnlabeled) {
      labels.emplace_back(bag.id, bag.label);
    }
  }
  return labels;
}

Status RetrievalSession::Restore(
    const std::vector<std::pair<int, BagLabel>>& labels, int round) {
  MIVID_RETURN_IF_ERROR(engine_->SetLabels(labels));
  round_ = round;
  return engine_->Retrain();
}

Status RetrievalSession::SubmitFeedback(
    const std::vector<std::pair<int, BagLabel>>& labels) {
  MIVID_RETURN_IF_ERROR(engine_->SetLabels(labels));
  ++round_;
  return engine_->Retrain();
}

}  // namespace mivid

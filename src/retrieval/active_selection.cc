#include "retrieval/active_selection.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace mivid {

std::vector<int> SelectForFeedback(const std::vector<ScoredBag>& ranking,
                                   const MilDataset& dataset, size_t n,
                                   double boundary,
                                   const ActiveSelectionOptions& options) {
  auto labeled = [&](int bag_id) {
    if (!options.skip_labeled) return false;
    const MilBag* bag = dataset.FindBag(bag_id);
    return bag != nullptr && bag->label != BagLabel::kUnlabeled;
  };

  const size_t explore_slots = static_cast<size_t>(
      std::lround(options.explore_fraction * static_cast<double>(n)));
  const size_t exploit_slots = n - explore_slots;

  std::vector<int> selected;
  std::set<int> used;

  // Exploit: best-ranked unlabeled bags.
  for (const auto& sb : ranking) {
    if (selected.size() >= exploit_slots) break;
    if (labeled(sb.bag_id)) continue;
    selected.push_back(sb.bag_id);
    used.insert(sb.bag_id);
  }

  // Explore: unlabeled bags closest to the boundary.
  std::vector<ScoredBag> by_uncertainty(ranking);
  std::stable_sort(by_uncertainty.begin(), by_uncertainty.end(),
                   [&](const ScoredBag& a, const ScoredBag& b) {
                     return std::fabs(a.score - boundary) <
                            std::fabs(b.score - boundary);
                   });
  for (const auto& sb : by_uncertainty) {
    if (selected.size() >= n) break;
    if (used.count(sb.bag_id) || labeled(sb.bag_id)) continue;
    selected.push_back(sb.bag_id);
    used.insert(sb.bag_id);
  }

  // Backfill with ranked bags (labeled ones last resort) if short.
  for (const auto& sb : ranking) {
    if (selected.size() >= n) break;
    if (used.count(sb.bag_id)) continue;
    selected.push_back(sb.bag_id);
    used.insert(sb.bag_id);
  }
  return selected;
}

}  // namespace mivid

// The proposed method: MIL relevance feedback with One-class SVM
// (paper Sec. 5.2-5.3).
//
// After each feedback round the engine assembles the training set from the
// bags labeled relevant so far, sets the outlier fraction per Eq. 9
//   delta = 1 - (h/H + z)
// (h = number of relevant bags, H = number of training instances,
// z = 0.05), trains a One-class SVM on the flattened TS vectors, and ranks
// every bag by the maximum decision value over its instances.

#ifndef MIVID_RETRIEVAL_MIL_RF_ENGINE_H_
#define MIVID_RETRIEVAL_MIL_RF_ENGINE_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "event/event_model.h"
#include "mil/dataset.h"
#include "retrieval/engine.h"
#include "retrieval/heuristic.h"
#include "svm/kernel_cache.h"
#include "svm/one_class_svm.h"

namespace mivid {

/// Which instances of the relevant bags enter the training set
/// (the paper: "collecting the highest scored TSs in the relevant VSs").
enum class TrainingSetPolicy : uint8_t {
  /// The highest-scored TSs of each relevant VS: every TS whose heuristic
  /// score reaches `top_score_fraction` of its bag's best (so the extra
  /// participants of multi-vehicle accidents are collected too, which is
  /// what Eq. 9's z compensates for). Paper-faithful default.
  kTopScoredInstances = 0,
  /// Every TS of every relevant VS (ablation: at least h of H are truly
  /// relevant, the rest are outliers for Eq. 9 to absorb).
  kAllInstances = 1,
  /// Exactly one top TS per relevant VS (ablation: smallest training set;
  /// Eq. 9 degenerates to the nu floor).
  kTopInstancePerBag = 2,
};

/// Engine configuration.
struct MilRfOptions {
  KernelParams kernel;        ///< RBF sigma 0.5 over [0,1]-normalized dims
  bool auto_sigma = true;     ///< set RBF sigma from the median pairwise
                              ///< training distance each round (self-tuning
                              ///< bandwidth; ignored for non-RBF kernels)
  double sigma_scale = 0.3;   ///< auto sigma = scale * median distance;
                              ///< < 1 biases toward nearest-neighbor locality
  double z = 0.05;            ///< Eq. 9 adjustment (paper: 0.05 works well)
  double min_nu = 0.02;       ///< clamp for degenerate label counts
  double max_nu = 0.95;
  TrainingSetPolicy policy = TrainingSetPolicy::kTopScoredInstances;
  double top_score_fraction = 0.5;  ///< kTopScoredInstances threshold
  double min_training_score = 0.0;  ///< drop training TSs whose heuristic
                                    ///< score is below this fraction of the
                                    ///< best score across all relevant bags
                                    ///< (guards against feature-less but
                                    ///< technically-relevant windows, e.g.
                                    ///< a crashed car sitting still; 0=off)
  size_t base_dim = 3;        ///< checkpoint feature dimension
  EventModel tie_break_model; ///< heuristic used by kTopInstancePerBag
};

/// One-class-SVM MIL ranker over a labeled MilDataset (the proposed
/// method; registry key "milrf").
class MilRfEngine : public RetrievalEngine {
 public:
  /// `dataset` must outlive the engine.
  MilRfEngine(MilDataset* dataset, MilRfOptions options);

  std::string_view name() const override { return "milrf"; }

  /// (Re)trains from the bags currently labeled relevant in the dataset.
  /// Fails with FailedPrecondition when no relevant bag exists yet.
  Status Learn();

  /// Cold-start-aware Learn(): a no-op until a relevant label exists.
  Status Retrain() override;

  /// True once Learn() has succeeded at least once.
  bool trained() const override { return model_.has_value(); }

  /// Ranks all bags by max-instance decision value (requires trained()).
  std::vector<ScoredBag> Rank() const override;

  /// Exact top-k: identical to truncating Rank(), but bags whose
  /// decision-value upper bound (partial kernel sum plus the remaining
  /// coefficient mass) provably falls below the current k-th score stop
  /// early. RBF only — the bound needs K <= 1; other kernels and
  /// unpackable corpora fall back to the full ranking.
  std::vector<ScoredBag> RankTopK(size_t k) const override;

  /// Decision value of a single bag under the current model.
  double BagScore(const MilBag& bag) const;

  /// The nu (delta) used by the last Learn() call.
  double last_nu() const { return last_nu_; }
  size_t last_training_size() const { return last_training_size_; }
  const OneClassSvmModel* model() const {
    return model_ ? &*model_ : nullptr;
  }

  /// Cross-round kernel cache statistics (RBF sessions only).
  const KernelCache& kernel_cache() const { return kernel_cache_; }

  /// Per-round training stats plus ranking totals for this session.
  const RunSummary& run_summary() const override { return summary_; }

 private:
  MilRfOptions options_;
  std::optional<OneClassSvmModel> model_;
  /// Pairwise-distance cache keyed by (bag_id, instance_id): feedback
  /// rounds mostly retrain on the same instances, so the Gram blocks that
  /// did not change between rounds are served from here.
  KernelCache kernel_cache_;
  /// Mutable: Rank() is logically const but contributes timing totals.
  mutable RunSummary summary_;
  double last_nu_ = 0.0;
  size_t last_training_size_ = 0;
};

}  // namespace mivid

#endif  // MIVID_RETRIEVAL_MIL_RF_ENGINE_H_

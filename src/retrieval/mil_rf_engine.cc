#include "retrieval/mil_rf_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "linalg/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

namespace {

/// A training candidate: the instance vector, its heuristic score, and its
/// stable identity (the kernel-cache key).
struct TrainingCandidate {
  Vec features;
  double score = 0.0;
  InstanceKey id;
};

}  // namespace

MilRfEngine::MilRfEngine(MilDataset* dataset, MilRfOptions options)
    : RetrievalEngine(dataset), options_(options) {
  if (options_.tie_break_model.weights.empty()) {
    options_.tie_break_model = EventModel::Accident(options_.base_dim);
  }
}

Status MilRfEngine::Retrain() {
  if (dataset_->CountLabel(BagLabel::kRelevant) == 0) return Status::OK();
  return Learn();
}

Status MilRfEngine::Learn() {
  MIVID_TRACE_SPAN("mil/learn");
  MIVID_SCOPED_TIMER("mil/learn_seconds");
  const auto learn_start = std::chrono::steady_clock::now();
  const uint64_t cache_hits_before = kernel_cache_.hits();
  const uint64_t cache_misses_before = kernel_cache_.misses();
  const std::vector<const MilBag*> relevant =
      dataset_->BagsWithLabel(BagLabel::kRelevant);
  if (relevant.empty()) {
    return Status::FailedPrecondition(
        "no relevant feedback yet; use the initial heuristic ranking");
  }

  // Assemble the training set (each candidate with its heuristic score so
  // the global floor below can be applied).
  std::vector<TrainingCandidate> candidates;
  for (const MilBag* bag : relevant) {
    if (bag->empty()) continue;
    std::vector<double> scores;
    scores.reserve(bag->instances.size());
    double best_score = -1.0;
    for (const auto& inst : bag->instances) {
      scores.push_back(HeuristicInstanceScore(
          inst.raw_features, options_.tie_break_model, options_.base_dim));
      best_score = std::max(best_score, scores.back());
    }
    auto add = [&](size_t i) {
      candidates.push_back({bag->instances[i].features, scores[i],
                            {bag->id, bag->instances[i].instance_id}});
    };
    if (options_.policy == TrainingSetPolicy::kAllInstances) {
      for (size_t i = 0; i < scores.size(); ++i) add(i);
    } else if (options_.policy == TrainingSetPolicy::kTopInstancePerBag) {
      for (size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] == best_score) {
          add(i);
          break;
        }
      }
    } else {  // kTopScoredInstances
      const double cutoff = best_score * options_.top_score_fraction;
      for (size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] >= cutoff) add(i);
      }
    }
  }
  // Global floor: a relevant bag whose best TS still looks like normal
  // driving (a crashed car parked against the wall) would anchor the
  // support region at the feature origin; drop such anchors.
  if (options_.min_training_score > 0.0) {
    double global_best = 0.0;
    for (const auto& c : candidates) {
      global_best = std::max(global_best, c.score);
    }
    const double floor = options_.min_training_score * global_best;
    std::vector<TrainingCandidate> kept;
    for (auto& c : candidates) {
      if (c.score >= floor) kept.push_back(std::move(c));
    }
    if (!kept.empty()) candidates.swap(kept);
  }
  std::vector<Vec> training;
  std::vector<InstanceKey> training_ids;
  training.reserve(candidates.size());
  training_ids.reserve(candidates.size());
  for (auto& c : candidates) {
    training.push_back(std::move(c.features));
    training_ids.push_back(c.id);
  }
  if (training.empty()) {
    return Status::FailedPrecondition("relevant bags contain no instances");
  }
  // Validate dimensions before any pairwise work: the distance kernels
  // index both vectors by the same coordinate.
  for (const auto& t : training) {
    if (t.size() != training[0].size()) {
      return Status::InvalidArgument(
          "relevant bags contain instances of inconsistent dimension");
    }
  }

  // Eq. 9: delta = 1 - (h/H + z).
  const double h = static_cast<double>(relevant.size());
  const double big_h = static_cast<double>(training.size());
  const double nu =
      std::clamp(1.0 - (h / big_h + options_.z), options_.min_nu,
                 options_.max_nu);

  OneClassSvmOptions svm_options;
  svm_options.kernel = options_.kernel;
  const bool rbf = svm_options.kernel.type == KernelType::kRbf;

  // RBF sessions reuse pairwise distances across rounds: only the pairs
  // involving newly labeled instances are computed, the rest are cache
  // hits. The distances feed both the bandwidth heuristic and the Gram.
  std::optional<Matrix> d2;
  if (rbf) {
    d2 = kernel_cache_.PairwiseSquaredDistances(training, training_ids);
  }
  if (options_.auto_sigma && rbf && training.size() >= 2) {
    // Median-distance bandwidth heuristic: wide enough to generalize
    // across the relevant cluster, narrow enough to exclude the rest.
    std::vector<double> dists;
    dists.reserve(training.size() * (training.size() - 1) / 2);
    for (size_t i = 0; i < training.size(); ++i) {
      for (size_t j = i + 1; j < training.size(); ++j) {
        dists.push_back(std::sqrt(d2->At(i, j)));
      }
    }
    std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                     dists.end());
    const double median = dists[dists.size() / 2];
    if (median > 1e-9) {
      svm_options.kernel.sigma = options_.sigma_scale * median;
    }
  }
  svm_options.nu = nu;
  OneClassSvmTrainer trainer(svm_options);
  OneClassSvmModel model;
  if (rbf) {
    const GramMatrix gram(svm_options.kernel, *d2);
    MIVID_ASSIGN_OR_RETURN(model, trainer.Train(training, gram));
  } else {
    MIVID_ASSIGN_OR_RETURN(model, trainer.Train(training));
  }

  model_ = std::move(model);
  last_nu_ = nu;
  last_training_size_ = training.size();

  MilRoundStats stats;
  stats.round = static_cast<int>(summary_.rounds.size()) + 1;
  stats.nu = nu;
  stats.sigma = svm_options.kernel.sigma;
  stats.relevant_bags = relevant.size();
  stats.training_size = training.size();
  stats.support_vectors = model_->num_support_vectors();
  stats.smo_iterations = model_->iterations_used();
  stats.achieved_outlier_fraction = model_->training_outlier_fraction();
  stats.cache_hits = kernel_cache_.hits() - cache_hits_before;
  stats.cache_misses = kernel_cache_.misses() - cache_misses_before;
  stats.learn_seconds = SecondsSince(learn_start);
  summary_.rounds.push_back(stats);

  MIVID_METRIC_GAUGE_SET("mil/last_nu", nu);
  MIVID_METRIC_GAUGE_SET("mil/last_sigma", stats.sigma);
  MIVID_METRIC_GAUGE_SET("mil/last_training_size",
                         static_cast<double>(training.size()));
  MIVID_METRIC_COUNT("mil/learn_calls", 1);
  return Status::OK();
}

double MilRfEngine::BagScore(const MilBag& bag) const {
  double best = -1e18;
  for (const auto& inst : bag.instances) {
    best = std::max(best, model_->DecisionValue(inst.features));
  }
  return bag.empty() ? -1e18 : best;
}

std::vector<ScoredBag> MilRfEngine::Rank() const {
  MIVID_TRACE_SPAN("mil/rank");
  MIVID_SCOPED_TIMER("rank/seconds");
  const auto rank_start = std::chrono::steady_clock::now();
  std::vector<ScoredBag> ranking;
  if (!model_) return ranking;

  // Score every instance of every bag in one parallel batch, then take
  // per-bag maxima (order-independent, so the ranking is identical at any
  // thread count). The corpus's cached SoA lowering feeds the SIMD batch
  // path directly; a corpus with mixed instance dimensions falls back to
  // flattening Vec pointers (DecisionValues then evaluates pointwise).
  const std::vector<MilBag>& bags = dataset_->bags();
  const std::shared_ptr<const PackedCorpus> packed = dataset_->EnsurePacked();
  std::vector<double> values;
  const std::vector<size_t>* bag_begin = nullptr;
  std::vector<size_t> fallback_begin;
  if (packed->valid) {
    values = model_->DecisionValues(packed->features);
    bag_begin = &packed->bag_begin;
  } else {
    std::vector<const Vec*> instances;
    fallback_begin.assign(1, 0);
    for (const auto& bag : bags) {
      for (const auto& inst : bag.instances) instances.push_back(&inst.features);
      fallback_begin.push_back(instances.size());
    }
    values = model_->DecisionValues(instances);
    bag_begin = &fallback_begin;
  }

  ranking.reserve(bags.size());
  for (size_t b = 0; b < bags.size(); ++b) {
    double best = -1e18;
    for (size_t q = (*bag_begin)[b]; q < (*bag_begin)[b + 1]; ++q) {
      best = std::max(best, values[q]);
    }
    ranking.push_back({bags[b].id, best});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  ++summary_.rank_calls;
  summary_.total_rank_seconds += SecondsSince(rank_start);
  MIVID_METRIC_COUNT("rank/bags", ranking.size());
  MIVID_METRIC_COUNT("rank/calls", 1);
  return ranking;
}

std::vector<ScoredBag> MilRfEngine::RankTopK(size_t k) const {
  if (!model_) return {};
  if (k == 0) return {};
  const std::vector<MilBag>& bags = dataset_->bags();
  const std::shared_ptr<const PackedCorpus> packed = dataset_->EnsurePacked();
  const bool rbf = model_->kernel().type == KernelType::kRbf;
  if (!rbf || !packed->valid || k >= bags.size()) {
    return RetrievalEngine::RankTopK(k);
  }
  MIVID_TRACE_SPAN("mil/rank_topk");
  MIVID_SCOPED_TIMER("rank/seconds");
  const auto rank_start = std::chrono::steady_clock::now();

  const PreparedKernel kernel(model_->kernel());
  const double gamma = kernel.gamma();
  const double rho = model_->rho();
  const std::vector<Vec>& svs = model_->support_vectors();
  const Vec& coef = model_->coefficients();
  const size_t num_sv = svs.size();
  const PackedFeatureMatrix& feat = packed->features;
  const SimdOpsTable& ops = SimdOps();

  // suffix[s] = sum of coefficients s..end. An RBF kernel value lies in
  // (0, 1], so after accumulating the first s support vectors a bag's
  // decision value can exceed its current partial maximum by at most
  // suffix[s]. The sums carry ~1e-13 of rounding at most; the pruning
  // slack below dominates that comfortably.
  std::vector<double> suffix(num_sv + 1, 0.0);
  for (size_t s = num_sv; s > 0; --s) suffix[s - 1] = suffix[s] + coef[s - 1];
  constexpr size_t kSvBlock = 32;
  // Prune only when the bound is below the k-th score by more than the
  // slack: the bound's floating-point error is orders of magnitude
  // smaller, so a pruned bag provably ranks below every kept one — and
  // can't even tie, which keeps tie-breaking identical to Rank().
  constexpr double kSlack = 1e-9;

  // Min-heap on (score desc, bag_id asc): top() is the weakest of the
  // current k best, i.e. the pruning threshold.
  struct Entry {
    double score;
    int bag_id;
  };
  // comp(a, b) == "a ranks before b"; the heap's top is then the entry
  // ranking last among the kept k.
  const auto better = [](const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.bag_id < b.bag_id;
  };
  std::vector<Entry> heap;
  heap.reserve(k);
  size_t pruned = 0;

  // Serial bag loop in dataset order — same accumulation schedule at any
  // MIVID_THREADS, and the threshold tightens as strong bags are seen.
  std::vector<double> d2;
  std::vector<double> krow;
  std::vector<double> acc;
  for (size_t b = 0; b < bags.size(); ++b) {
    const size_t begin = packed->bag_begin[b];
    const size_t count = packed->bag_begin[b + 1] - begin;
    double score;
    if (count == 0) {
      score = -1e18;  // Rank() scores empty bags at the floor
    } else {
      const bool full = heap.size() < k;
      const double tau = full ? -std::numeric_limits<double>::infinity()
                              : heap.front().score;
      d2.resize(count);
      krow.resize(count);
      acc.assign(count, 0.0);
      const double* x = feat.data() + begin;
      size_t s = 0;
      bool below = false;
      while (s < num_sv) {
        const size_t s_end = std::min(num_sv, s + kSvBlock);
        for (; s < s_end; ++s) {
          ops.direct_d2_row(svs[s].data(), feat.dim(), x, feat.stride(),
                            count, d2.data());
          ops.rbf_from_d2_row(gamma, d2.data(), count, krow.data());
          ops.axpy(coef[s], krow.data(), count, acc.data());
        }
        if (s == num_sv) break;
        double best_acc = acc[0];
        for (size_t t = 1; t < count; ++t) best_acc = std::max(best_acc, acc[t]);
        if (best_acc + suffix[s] - rho < tau - kSlack) {
          below = true;
          ++pruned;
          break;
        }
      }
      if (below) continue;
      // Fully evaluated: the same SIMD rows in the same ascending-SV
      // order as DecisionValues, so the score bits match Rank() exactly.
      double best = -1e18;
      for (size_t t = 0; t < count; ++t) best = std::max(best, acc[t] - rho);
      score = best;
    }
    if (heap.size() < k) {
      heap.push_back({score, bags[b].id});
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better({score, bags[b].id}, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = {score, bags[b].id};
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }

  std::vector<ScoredBag> ranking;
  ranking.reserve(heap.size());
  for (const Entry& e : heap) ranking.push_back({e.bag_id, e.score});
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  ++summary_.rank_calls;
  summary_.total_rank_seconds += SecondsSince(rank_start);
  MIVID_METRIC_COUNT("rank/topk_calls", 1);
  MIVID_METRIC_COUNT("rank/topk_pruned_bags", pruned);
  MIVID_METRIC_COUNT("rank/bags", ranking.size());
  MIVID_METRIC_COUNT("rank/calls", 1);
  return ranking;
}

}  // namespace mivid

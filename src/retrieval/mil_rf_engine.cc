#include "retrieval/mil_rf_engine.h"

#include <algorithm>

namespace mivid {

MilRfEngine::MilRfEngine(const MilDataset* dataset, MilRfOptions options)
    : dataset_(dataset), options_(options) {
  if (options_.tie_break_model.weights.empty()) {
    options_.tie_break_model = EventModel::Accident(options_.base_dim);
  }
}

Status MilRfEngine::Learn() {
  const std::vector<const MilBag*> relevant =
      dataset_->BagsWithLabel(BagLabel::kRelevant);
  if (relevant.empty()) {
    return Status::FailedPrecondition(
        "no relevant feedback yet; use the initial heuristic ranking");
  }

  // Assemble the training set (each candidate with its heuristic score so
  // the global floor below can be applied).
  std::vector<std::pair<Vec, double>> candidates;
  for (const MilBag* bag : relevant) {
    if (bag->empty()) continue;
    std::vector<double> scores;
    scores.reserve(bag->instances.size());
    double best_score = -1.0;
    for (const auto& inst : bag->instances) {
      scores.push_back(HeuristicInstanceScore(
          inst.raw_features, options_.tie_break_model, options_.base_dim));
      best_score = std::max(best_score, scores.back());
    }
    if (options_.policy == TrainingSetPolicy::kAllInstances) {
      for (size_t i = 0; i < scores.size(); ++i) {
        candidates.emplace_back(bag->instances[i].features, scores[i]);
      }
    } else if (options_.policy == TrainingSetPolicy::kTopInstancePerBag) {
      for (size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] == best_score) {
          candidates.emplace_back(bag->instances[i].features, scores[i]);
          break;
        }
      }
    } else {  // kTopScoredInstances
      const double cutoff = best_score * options_.top_score_fraction;
      for (size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] >= cutoff) {
          candidates.emplace_back(bag->instances[i].features, scores[i]);
        }
      }
    }
  }
  // Global floor: a relevant bag whose best TS still looks like normal
  // driving (a crashed car parked against the wall) would anchor the
  // support region at the feature origin; drop such anchors.
  if (options_.min_training_score > 0.0) {
    double global_best = 0.0;
    for (const auto& [v, s] : candidates) {
      (void)v;
      global_best = std::max(global_best, s);
    }
    const double floor = options_.min_training_score * global_best;
    std::vector<std::pair<Vec, double>> kept;
    for (auto& c : candidates) {
      if (c.second >= floor) kept.push_back(std::move(c));
    }
    if (!kept.empty()) candidates.swap(kept);
  }
  std::vector<Vec> training;
  training.reserve(candidates.size());
  for (auto& [v, s] : candidates) {
    (void)s;
    training.push_back(std::move(v));
  }
  if (training.empty()) {
    return Status::FailedPrecondition("relevant bags contain no instances");
  }

  // Eq. 9: delta = 1 - (h/H + z).
  const double h = static_cast<double>(relevant.size());
  const double big_h = static_cast<double>(training.size());
  const double nu =
      std::clamp(1.0 - (h / big_h + options_.z), options_.min_nu,
                 options_.max_nu);

  OneClassSvmOptions svm_options;
  svm_options.kernel = options_.kernel;
  if (options_.auto_sigma && svm_options.kernel.type == KernelType::kRbf &&
      training.size() >= 2) {
    // Median-distance bandwidth heuristic: wide enough to generalize
    // across the relevant cluster, narrow enough to exclude the rest.
    std::vector<double> dists;
    dists.reserve(training.size() * (training.size() - 1) / 2);
    for (size_t i = 0; i < training.size(); ++i) {
      for (size_t j = i + 1; j < training.size(); ++j) {
        dists.push_back(
            std::sqrt(SquaredDistance(training[i], training[j])));
      }
    }
    std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                     dists.end());
    const double median = dists[dists.size() / 2];
    if (median > 1e-9) {
      svm_options.kernel.sigma = options_.sigma_scale * median;
    }
  }
  svm_options.nu = nu;
  OneClassSvmTrainer trainer(svm_options);
  MIVID_ASSIGN_OR_RETURN(OneClassSvmModel model, trainer.Train(training));

  model_ = std::move(model);
  last_nu_ = nu;
  last_training_size_ = training.size();
  return Status::OK();
}

double MilRfEngine::BagScore(const MilBag& bag) const {
  double best = -1e18;
  for (const auto& inst : bag.instances) {
    best = std::max(best, model_->DecisionValue(inst.features));
  }
  return bag.empty() ? -1e18 : best;
}

std::vector<ScoredBag> MilRfEngine::Rank() const {
  std::vector<ScoredBag> ranking;
  if (!model_) return ranking;
  ranking.reserve(dataset_->size());
  for (const auto& bag : dataset_->bags()) {
    ranking.push_back({bag.id, BagScore(bag)});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace mivid

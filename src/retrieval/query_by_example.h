// Query by example and query by sketch (paper Sec. 7, future work:
// "We will extend this to include query by example, query by sketches").
//
// Query by example: the user picks a VS (e.g. one known accident window);
// every bag is ranked by the best instance-to-instance kernel similarity
// against the example's instances. Query by sketch: the user supplies a
// hand-drawn trajectory; it is featurized through the standard checkpoint
// pipeline and matched against every TS.

#ifndef MIVID_RETRIEVAL_QUERY_BY_EXAMPLE_H_
#define MIVID_RETRIEVAL_QUERY_BY_EXAMPLE_H_

#include "common/status.h"
#include "event/features.h"
#include "event/sliding_window.h"
#include "mil/dataset.h"
#include "retrieval/heuristic.h"
#include "svm/kernel.h"

namespace mivid {

/// Ranks every bag in `dataset` by its similarity to `example`.
///
/// Matching every pair of instances lets the example's *ordinary* TSs
/// (normal traffic present in any window) dominate, so the query first
/// selects the example's most distinctive instance — the one farthest from
/// the corpus instance centroid, i.e. the TS that makes this window worth
/// querying for — and ranks bags by their best match against it:
/// sim(B, E) = max_{b in B} K(b, e*). The example may be a bag of the
/// dataset or an external one with compatible feature dimensions.
std::vector<ScoredBag> QueryByExample(const MilDataset& dataset,
                                      const MilBag& example,
                                      const KernelParams& kernel);

/// A free-hand sketch: a polyline the user draws over the scene, plus the
/// pace (frames between successive sketch points) it implies.
struct TrajectorySketch {
  std::vector<Point2> points;
  int frames_per_point = 5;
};

/// Featurizes the sketch through the standard checkpoint pipeline (as a
/// single synthetic track), flattens it with the corpus scaler, and ranks
/// every bag by the best TS-to-sketch kernel similarity. The sketch must
/// span at least `window_size` checkpoints; windows are slid over the
/// sketch and the best window represents it.
Result<std::vector<ScoredBag>> QueryBySketch(
    const MilDataset& dataset, const TrajectorySketch& sketch,
    const FeatureScaler& scaler, const FeatureOptions& feature_options,
    const WindowOptions& window_options, const KernelParams& kernel);

}  // namespace mivid

#endif  // MIVID_RETRIEVAL_QUERY_BY_EXAMPLE_H_

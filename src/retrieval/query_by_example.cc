#include "retrieval/query_by_example.h"

#include <algorithm>
#include <limits>

namespace mivid {

namespace {

/// Mean of all instance feature vectors in the corpus (empty if none).
Vec CorpusInstanceMean(const MilDataset& dataset) {
  Vec mean;
  size_t count = 0;
  for (const auto& bag : dataset.bags()) {
    for (const auto& inst : bag.instances) {
      if (mean.empty()) mean.assign(inst.features.size(), 0.0);
      if (inst.features.size() != mean.size()) continue;
      for (size_t d = 0; d < mean.size(); ++d) mean[d] += inst.features[d];
      ++count;
    }
  }
  if (count > 0) {
    for (double& v : mean) v /= static_cast<double>(count);
  }
  return mean;
}

/// The vector in `candidates` farthest from `reference` (the most
/// distinctive one); nullptr for an empty set.
const Vec* MostDistinctive(const std::vector<const Vec*>& candidates,
                           const Vec& reference) {
  const Vec* best = nullptr;
  double best_dist = -1.0;
  for (const Vec* v : candidates) {
    if (v->size() != reference.size()) continue;
    const double d = SquaredDistance(*v, reference);
    if (d > best_dist) {
      best_dist = d;
      best = v;
    }
  }
  return best;
}

std::vector<ScoredBag> RankBySimilarityTo(const MilDataset& dataset,
                                          const Vec& target,
                                          const KernelParams& kernel,
                                          int pinned_bag_id) {
  std::vector<ScoredBag> ranking;
  ranking.reserve(dataset.size());
  for (const auto& bag : dataset.bags()) {
    double best = 0.0;
    if (bag.id == pinned_bag_id) {
      // The example itself always ranks first (even under unbounded
      // kernels like linear/polynomial).
      best = std::numeric_limits<double>::infinity();
    } else {
      for (const auto& inst : bag.instances) {
        if (inst.features.size() != target.size()) continue;
        best = std::max(best, KernelEval(kernel, inst.features, target));
      }
    }
    ranking.push_back({bag.id, best});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace

std::vector<ScoredBag> QueryByExample(const MilDataset& dataset,
                                      const MilBag& example,
                                      const KernelParams& kernel) {
  const Vec mean = CorpusInstanceMean(dataset);
  std::vector<const Vec*> candidates;
  for (const auto& inst : example.instances) {
    candidates.push_back(&inst.features);
  }
  const Vec* target =
      mean.empty() ? nullptr : MostDistinctive(candidates, mean);
  if (target == nullptr) {
    // Degenerate corpus or incompatible example: everything scores 0.
    std::vector<ScoredBag> ranking;
    for (const auto& bag : dataset.bags()) ranking.push_back({bag.id, 0.0});
    return ranking;
  }
  return RankBySimilarityTo(dataset, *target, kernel, example.id);
}

Result<std::vector<ScoredBag>> QueryBySketch(
    const MilDataset& dataset, const TrajectorySketch& sketch,
    const FeatureScaler& scaler, const FeatureOptions& feature_options,
    const WindowOptions& window_options, const KernelParams& kernel) {
  if (sketch.points.size() < 2) {
    return Status::InvalidArgument("sketch needs at least two points");
  }
  // Interpret the sketch as a synthetic track on the checkpoint grid.
  Track track;
  track.id = 0;
  const int step = std::max(1, sketch.frames_per_point);
  for (size_t i = 0; i < sketch.points.size(); ++i) {
    track.points.push_back({static_cast<int>(i) * step, sketch.points[i], {}});
  }
  const std::vector<TrackFeatures> features =
      ComputeTrackFeatures({track}, feature_options);
  if (features.empty()) {
    return Status::InvalidArgument("sketch too short to featurize");
  }
  const int span = track.points.back().frame + 1;
  WindowOptions sliding = window_options;
  sliding.stride = 1;  // every alignment of the window over the sketch
  const std::vector<VideoSequence> windows =
      ExtractWindows(features, span, feature_options, sliding);
  if (windows.empty() || windows[0].ts.empty()) {
    return Status::InvalidArgument(
        "sketch spans fewer checkpoints than the window size");
  }

  // Collect the sketch's flattened window vectors and pick the most
  // distinctive one relative to the corpus (the stretch of the sketch the
  // user actually drew the query for — a turn, a stop, ...). A hand-drawn
  // sketch carries trajectory *shape* only, so the inter-vehicle distance
  // dimension (feature 0 of each checkpoint) is masked out of both sides
  // of the similarity.
  const size_t base_dim = scaler.dimension();
  auto mask_mdist = [base_dim](Vec v) {
    for (size_t offset = 0; offset + base_dim <= v.size();
         offset += base_dim) {
      v[offset] = 0.0;
    }
    return v;
  };
  std::vector<Vec> sketch_vectors;
  for (const auto& vs : windows) {
    for (const auto& ts : vs.ts) {
      sketch_vectors.push_back(mask_mdist(
          ts.Flatten(scaler, feature_options.include_velocity)));
    }
  }
  // Keep every sketch window nearly as distinctive as the best one: the
  // salient stretch (a turn, a stop) appears at several alignments within
  // the sliding window, and the corpus TS may match any of them.
  const Vec mean = CorpusInstanceMean(dataset);
  if (mean.empty()) {
    return Status::InvalidArgument(
        "sketch features are incompatible with the corpus");
  }
  const Vec masked_mean = mask_mdist(mean);
  double best_dist = 0.0;
  for (const auto& v : sketch_vectors) {
    if (v.size() != masked_mean.size()) continue;
    best_dist = std::max(best_dist, SquaredDistance(v, masked_mean));
  }
  if (best_dist <= 0.0) {
    return Status::InvalidArgument(
        "sketch features are incompatible with the corpus");
  }
  std::vector<const Vec*> targets;
  for (const auto& v : sketch_vectors) {
    if (v.size() == masked_mean.size() &&
        SquaredDistance(v, masked_mean) >= 0.5 * best_dist) {
      targets.push_back(&v);
    }
  }

  std::vector<ScoredBag> ranking;
  ranking.reserve(dataset.size());
  for (const auto& bag : dataset.bags()) {
    double best = 0.0;
    for (const auto& inst : bag.instances) {
      const Vec masked = mask_mdist(inst.features);
      for (const Vec* target : targets) {
        if (masked.size() != target->size()) continue;
        best = std::max(best, KernelEval(kernel, masked, *target));
      }
    }
    ranking.push_back({bag.id, best});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace mivid

// 2-D geometry primitives: points, vectors, bounding boxes, angles.
//
// The tracker reports vehicle positions as centroids of Minimal Bounding
// Rectangles (paper Fig. 1); the event model (Sec. 4) needs motion vectors
// and the absolute angle between consecutive motion vectors (Fig. 3).

#ifndef MIVID_GEOMETRY_GEOMETRY_H_
#define MIVID_GEOMETRY_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <string>

namespace mivid {

/// A point / vector in the image or world plane.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  Point2() = default;
  Point2(double px, double py) : x(px), y(py) {}

  Point2 operator+(const Point2& o) const { return {x + o.x, y + o.y}; }
  Point2 operator-(const Point2& o) const { return {x - o.x, y - o.y}; }
  Point2 operator*(double s) const { return {x * s, y * s}; }
  bool operator==(const Point2& o) const { return x == o.x && y == o.y; }

  double Dot(const Point2& o) const { return x * o.x + y * o.y; }
  double Cross(const Point2& o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::hypot(x, y); }
  double SquaredNorm() const { return x * x + y * y; }

  /// Unit vector; returns (0,0) for the zero vector.
  Point2 Normalized() const {
    const double n = Norm();
    return n > 0 ? Point2{x / n, y / n} : Point2{};
  }

  std::string ToString() const;
};

/// Alias emphasizing vector (displacement) semantics, e.g. motion vectors.
using Vec2 = Point2;

/// Euclidean distance between two points.
double Distance(const Point2& a, const Point2& b);

/// Absolute angle in radians between two vectors, in [0, pi].
/// Zero vectors yield 0 (no direction change observable).
double AngleBetween(const Vec2& a, const Vec2& b);

/// Wraps an angle to (-pi, pi].
double WrapAngle(double radians);

/// Axis-aligned bounding box (the paper's Minimal Bounding Rectangle).
struct BBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  BBox() = default;
  BBox(double x0, double y0, double x1, double y1)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return std::max(0.0, Width()) * std::max(0.0, Height()); }
  Point2 Center() const { return {(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  bool Contains(const Point2& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const BBox& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }

  /// Intersection-over-union; 0 when disjoint.
  double IoU(const BBox& o) const;

  /// Smallest box containing both.
  BBox Union(const BBox& o) const;

  /// Grows the box by `margin` on every side.
  BBox Inflated(double margin) const {
    return {min_x - margin, min_y - margin, max_x + margin, max_y + margin};
  }

  std::string ToString() const;
};

/// Minimum distance between two boxes' interiors (0 if they touch/overlap).
double BoxDistance(const BBox& a, const BBox& b);

}  // namespace mivid

#endif  // MIVID_GEOMETRY_GEOMETRY_H_

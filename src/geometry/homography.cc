#include "geometry/homography.h"

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/solve.h"

namespace mivid {

namespace {

/// Hartley normalization: translate centroid to origin, scale mean
/// distance to sqrt(2). Returns the 3x3 normalizing transform.
Matrix NormalizingTransform(const std::vector<Point2>& points) {
  double cx = 0, cy = 0;
  for (const auto& p : points) {
    cx += p.x;
    cy += p.y;
  }
  cx /= static_cast<double>(points.size());
  cy /= static_cast<double>(points.size());
  double mean_dist = 0;
  for (const auto& p : points) {
    mean_dist += std::hypot(p.x - cx, p.y - cy);
  }
  mean_dist /= static_cast<double>(points.size());
  const double s = mean_dist > 1e-12 ? std::sqrt(2.0) / mean_dist : 1.0;

  Matrix t = Matrix::Identity(3);
  t.At(0, 0) = s;
  t.At(1, 1) = s;
  t.At(0, 2) = -s * cx;
  t.At(1, 2) = -s * cy;
  return t;
}

Point2 ApplyMatrix(const Matrix& h, const Point2& p) {
  const double x = h.At(0, 0) * p.x + h.At(0, 1) * p.y + h.At(0, 2);
  const double y = h.At(1, 0) * p.x + h.At(1, 1) * p.y + h.At(1, 2);
  const double w = h.At(2, 0) * p.x + h.At(2, 1) * p.y + h.At(2, 2);
  if (std::fabs(w) < 1e-12) return {1e12, 1e12};
  return {x / w, y / w};
}

/// 3x3 inverse via adjugate.
Result<Matrix> Invert3x3(const Matrix& m) {
  const double a = m.At(0, 0), b = m.At(0, 1), c = m.At(0, 2);
  const double d = m.At(1, 0), e = m.At(1, 1), f = m.At(1, 2);
  const double g = m.At(2, 0), h = m.At(2, 1), i = m.At(2, 2);
  const double det =
      a * (e * i - f * h) - b * (d * i - f * g) + c * (d * h - e * g);
  if (std::fabs(det) < 1e-15) {
    return Status::InvalidArgument("singular 3x3 matrix");
  }
  Matrix inv(3, 3);
  inv.At(0, 0) = (e * i - f * h) / det;
  inv.At(0, 1) = (c * h - b * i) / det;
  inv.At(0, 2) = (b * f - c * e) / det;
  inv.At(1, 0) = (f * g - d * i) / det;
  inv.At(1, 1) = (a * i - c * g) / det;
  inv.At(1, 2) = (c * d - a * f) / det;
  inv.At(2, 0) = (d * h - e * g) / det;
  inv.At(2, 1) = (b * g - a * h) / det;
  inv.At(2, 2) = (a * e - b * d) / det;
  return inv;
}

}  // namespace

Homography::Homography() : h_(Matrix::Identity(3)) {}

Result<Homography> Homography::Estimate(const std::vector<Point2>& src,
                                        const std::vector<Point2>& dst) {
  const size_t n = src.size();
  if (n < 4 || dst.size() != n) {
    return Status::InvalidArgument(
        "homography needs >= 4 correspondences of equal count");
  }

  const Matrix t_src = NormalizingTransform(src);
  const Matrix t_dst = NormalizingTransform(dst);

  // Build the 2n x 9 DLT system over normalized points.
  Matrix a(2 * n, 9);
  for (size_t k = 0; k < n; ++k) {
    const Point2 s = ApplyMatrix(t_src, src[k]);
    const Point2 d = ApplyMatrix(t_dst, dst[k]);
    const size_t r = 2 * k;
    // Row for x': [-x -y -1  0  0  0  x'x x'y x']
    a.At(r, 0) = -s.x;
    a.At(r, 1) = -s.y;
    a.At(r, 2) = -1;
    a.At(r, 6) = d.x * s.x;
    a.At(r, 7) = d.x * s.y;
    a.At(r, 8) = d.x;
    // Row for y': [ 0  0  0 -x -y -1  y'x y'y y']
    a.At(r + 1, 3) = -s.x;
    a.At(r + 1, 4) = -s.y;
    a.At(r + 1, 5) = -1;
    a.At(r + 1, 6) = d.y * s.x;
    a.At(r + 1, 7) = d.y * s.y;
    a.At(r + 1, 8) = d.y;
  }

  // h = eigenvector of A^T A with the smallest eigenvalue.
  const Matrix ata = a.Transpose().Multiply(a);
  MIVID_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigen(ata));
  const Vec h_vec = eig.vectors.Col(8);  // eigenvalues sorted descending

  Matrix h_norm(3, 3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t col = 0; col < 3; ++col) {
      h_norm.At(r, col) = h_vec[r * 3 + col];
    }
  }
  // Uniqueness check: a degenerate configuration (e.g. collinear points)
  // leaves a nullspace of dimension >= 2, i.e. the second-smallest
  // eigenvalue is also ~zero.
  if (std::fabs(eig.values[7]) < 1e-9 * std::max(std::fabs(eig.values[0]),
                                                 1e-30)) {
    return Status::InvalidArgument(
        "degenerate correspondence configuration for homography");
  }

  // Denormalize: H = T_dst^-1 H_norm T_src.
  MIVID_ASSIGN_OR_RETURN(Matrix t_dst_inv, Invert3x3(t_dst));
  Matrix h = t_dst_inv.Multiply(h_norm).Multiply(t_src);
  // Scale so h22 ~ 1 when possible (cosmetic but stabilizes comparisons).
  if (std::fabs(h.At(2, 2)) > 1e-12) {
    h.Scale(1.0 / h.At(2, 2));
  }
  return Homography(std::move(h));
}

Point2 Homography::Apply(const Point2& p) const { return ApplyMatrix(h_, p); }

Result<Homography> Homography::Inverse() const {
  MIVID_ASSIGN_OR_RETURN(Matrix inv, Invert3x3(h_));
  return Homography(std::move(inv));
}

double Homography::MaxTransferError(const std::vector<Point2>& src,
                                    const std::vector<Point2>& dst) const {
  double worst = 0;
  for (size_t i = 0; i < src.size() && i < dst.size(); ++i) {
    worst = std::max(worst, Distance(Apply(src[i]), dst[i]));
  }
  return worst;
}

Track TransformTrack(const Track& track, const Homography& h) {
  Track out;
  out.id = track.id;
  out.points.reserve(track.points.size());
  for (const auto& p : track.points) {
    TrackPoint q;
    q.frame = p.frame;
    q.centroid = h.Apply(p.centroid);
    const Point2 corners[4] = {
        h.Apply({p.bbox.min_x, p.bbox.min_y}),
        h.Apply({p.bbox.max_x, p.bbox.min_y}),
        h.Apply({p.bbox.min_x, p.bbox.max_y}),
        h.Apply({p.bbox.max_x, p.bbox.max_y}),
    };
    BBox box(corners[0].x, corners[0].y, corners[0].x, corners[0].y);
    for (const auto& c : corners) {
      box.min_x = std::min(box.min_x, c.x);
      box.min_y = std::min(box.min_y, c.y);
      box.max_x = std::max(box.max_x, c.x);
      box.max_y = std::max(box.max_y, c.y);
    }
    q.bbox = box;
    out.points.push_back(q);
  }
  return out;
}

}  // namespace mivid

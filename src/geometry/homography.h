// Planar homography estimation and application.
//
// The paper (Sec. 6.2) notes that mining across cameras requires
// normalizing clips "taken at different locations with different camera
// parameters" and defers it to future work because their metadata was
// missing. This module provides that normalization: a 3x3 projective
// mapping from image coordinates to a common road plane, estimated from
// >= 4 point correspondences by the normalized Direct Linear Transform.

#ifndef MIVID_GEOMETRY_HOMOGRAPHY_H_
#define MIVID_GEOMETRY_HOMOGRAPHY_H_

#include <vector>

#include "common/status.h"
#include "geometry/geometry.h"
#include "linalg/matrix.h"
#include "trajectory/trajectory.h"

namespace mivid {

/// A 3x3 projective transform of the plane.
class Homography {
 public:
  /// Identity transform.
  Homography();

  /// From a 3x3 matrix (not required to be normalized).
  explicit Homography(Matrix h) : h_(std::move(h)) {}

  /// Estimates H with dst_i ~ H src_i from >= 4 correspondences via the
  /// normalized DLT (Hartley normalization, smallest eigenvector of
  /// A^T A). Fails on degenerate configurations (e.g. 3+ collinear
  /// points dominating the system).
  static Result<Homography> Estimate(const std::vector<Point2>& src,
                                     const std::vector<Point2>& dst);

  /// Applies the transform; returns (0,0) far away if the point maps to
  /// the line at infinity (w ~ 0).
  Point2 Apply(const Point2& p) const;

  /// The inverse transform; fails if H is singular.
  Result<Homography> Inverse() const;

  const Matrix& matrix() const { return h_; }

  /// Max |dst_i - Apply(src_i)| over the correspondences.
  double MaxTransferError(const std::vector<Point2>& src,
                          const std::vector<Point2>& dst) const;

 private:
  Matrix h_;  // 3x3
};

/// Maps every centroid and MBR corner of `track` through `h` (the MBR is
/// re-fit as the axis-aligned box of the transformed corners).
Track TransformTrack(const Track& track, const Homography& h);

}  // namespace mivid

#endif  // MIVID_GEOMETRY_HOMOGRAPHY_H_

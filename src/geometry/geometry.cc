#include "geometry/geometry.h"

#include "common/string_util.h"

namespace mivid {

std::string Point2::ToString() const {
  return StrFormat("(%.2f, %.2f)", x, y);
}

double Distance(const Point2& a, const Point2& b) { return (a - b).Norm(); }

double AngleBetween(const Vec2& a, const Vec2& b) {
  const double na = a.Norm(), nb = b.Norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  double c = a.Dot(b) / (na * nb);
  c = std::clamp(c, -1.0, 1.0);
  return std::acos(c);
}

double WrapAngle(double radians) {
  while (radians > M_PI) radians -= 2 * M_PI;
  while (radians <= -M_PI) radians += 2 * M_PI;
  return radians;
}

double BBox::IoU(const BBox& o) const {
  const double ix = std::max(0.0, std::min(max_x, o.max_x) -
                                      std::max(min_x, o.min_x));
  const double iy = std::max(0.0, std::min(max_y, o.max_y) -
                                      std::max(min_y, o.min_y));
  const double inter = ix * iy;
  const double uni = Area() + o.Area() - inter;
  return uni > 0 ? inter / uni : 0.0;
}

BBox BBox::Union(const BBox& o) const {
  return {std::min(min_x, o.min_x), std::min(min_y, o.min_y),
          std::max(max_x, o.max_x), std::max(max_y, o.max_y)};
}

std::string BBox::ToString() const {
  return StrFormat("[%.1f,%.1f - %.1f,%.1f]", min_x, min_y, max_x, max_y);
}

double BoxDistance(const BBox& a, const BBox& b) {
  const double dx = std::max({0.0, a.min_x - b.max_x, b.min_x - a.max_x});
  const double dy = std::max({0.0, a.min_y - b.max_y, b.min_y - a.max_y});
  return std::hypot(dx, dy);
}

}  // namespace mivid

#include "svm/one_class_svm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "linalg/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

double OneClassSvmModel::DecisionValue(const Vec& x) const {
  const PreparedKernel kernel(kernel_);
  double acc = 0.0;
  for (size_t i = 0; i < support_vectors_.size(); ++i) {
    acc += coefficients_[i] * kernel.Eval(support_vectors_[i], x);
  }
  return acc - rho_;
}

std::vector<double> OneClassSvmModel::DecisionValues(
    const std::vector<const Vec*>& xs) const {
  const size_t dim = !support_vectors_.empty() ? support_vectors_[0].size()
                     : (xs.empty() ? 0 : xs[0]->size());
  bool uniform = true;
  for (const Vec* x : xs) {
    if (x->size() != dim) {
      uniform = false;
      break;
    }
  }
  if (uniform && !xs.empty()) {
    return DecisionValues(PackedFeatureMatrix::FromPoints(xs, dim));
  }
  // Mixed dimensions cannot be packed; evaluate pointwise.
  const PreparedKernel kernel(kernel_);
  std::vector<double> values(xs.size());
  ParallelFor(xs.size(), 16, [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      double acc = 0.0;
      for (size_t i = 0; i < support_vectors_.size(); ++i) {
        acc += coefficients_[i] * kernel.Eval(support_vectors_[i], *xs[q]);
      }
      values[q] = acc - rho_;
    }
  });
  return values;
}

std::vector<double> OneClassSvmModel::DecisionValues(
    const PackedFeatureMatrix& xs) const {
  std::vector<double> values(xs.n());
  if (xs.n() == 0) return values;
  const PreparedKernel kernel(kernel_);
  const SimdOpsTable& ops = SimdOps();
  const size_t dim = xs.dim();
  const size_t stride = xs.stride();
  const bool rbf = kernel_.type == KernelType::kRbf;
  const double gamma = kernel.gamma();
  // One support vector streamed across the chunk per pass; each point's
  // accumulator takes the coefficient terms in the same ascending-i order
  // DecisionValue uses, so the sums carry identical bits.
  ParallelFor(xs.n(), 64, [&](size_t begin, size_t end) {
    const size_t count = end - begin;
    const double* x = xs.data() + begin;
    std::vector<double> d2(count);
    std::vector<double> krow(count);
    std::vector<double> acc(count, 0.0);
    for (size_t i = 0; i < support_vectors_.size(); ++i) {
      if (rbf) {
        ops.direct_d2_row(support_vectors_[i].data(), dim, x, stride, count,
                          d2.data());
        ops.rbf_from_d2_row(gamma, d2.data(), count, krow.data());
      } else {
        ops.dot_row(support_vectors_[i].data(), dim, x, stride, count,
                    krow.data());
        for (size_t t = 0; t < count; ++t) {
          krow[t] = kernel.EvalFromDot(krow[t]);
        }
      }
      ops.axpy(coefficients_[i], krow.data(), count, acc.data());
    }
    for (size_t t = 0; t < count; ++t) values[begin + t] = acc[t] - rho_;
  });
  MIVID_METRIC_COUNT("simd/kernel_row_cells",
                     xs.n() * support_vectors_.size());
  return values;
}

Result<OneClassSvmModel> OneClassSvmTrainer::Train(
    const std::vector<Vec>& points) const {
  const size_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("one-class SVM needs at least one point");
  }
  const double nu = options_.nu;
  if (!(nu > 0.0 && nu <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("nu must be in (0, 1], got %g", nu));
  }
  for (const auto& p : points) {
    if (p.size() != points[0].size()) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }

  const GramMatrix gram(options_.kernel, points);
  return Train(points, gram);
}

Result<OneClassSvmModel> OneClassSvmTrainer::Train(
    const std::vector<Vec>& points, const GramMatrix& gram) const {
  MIVID_TRACE_SPAN("svm/smo");
  MIVID_SCOPED_TIMER("svm/train_seconds");
  const size_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("one-class SVM needs at least one point");
  }
  if (gram.size() != n) {
    return Status::InvalidArgument(
        StrFormat("gram size %zu does not match %zu points", gram.size(), n));
  }
  for (const auto& p : points) {
    if (p.size() != points[0].size()) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }
  const double nu = options_.nu;
  if (!(nu > 0.0 && nu <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("nu must be in (0, 1], got %g", nu));
  }
  const double c = 1.0 / (nu * static_cast<double>(n));

  // Feasible start: sum(alpha) = 1, 0 <= alpha <= c.
  Vec alpha(n, 0.0);
  {
    const size_t k = static_cast<size_t>(std::floor(nu * static_cast<double>(n)));
    double remaining = 1.0;
    for (size_t i = 0; i < k && i < n; ++i) {
      alpha[i] = c;
      remaining -= c;
    }
    if (k < n && remaining > 1e-15) alpha[k] = remaining;
  }

  // Gradient of 1/2 a^T Q a is Q a, built as an i-outer sweep of axpy
  // updates over Gram rows. Parallel over column chunks: each grad[j]
  // accumulates its sum over i in ascending order (the same order a
  // serial j-inner loop adds them), so the result is thread-independent.
  const SimdOpsTable& ops = SimdOps();
  Vec grad(n, 0.0);
  ParallelFor(n, 256, [&](size_t begin, size_t end) {
    for (size_t i = 0; i < n; ++i) {
      if (alpha[i] == 0.0) continue;
      ops.axpy(alpha[i], gram.RowPtr(i) + begin, end - begin,
               grad.data() + begin);
    }
  });

  const double kTau = 1e-12;
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    // Working-set selection: i maximizes -G over the upward-movable set,
    // j minimizes -G over the downward-movable set.
    int i_up = -1, j_low = -1;
    double best_up = -std::numeric_limits<double>::infinity();
    double worst_low = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] < c - kTau && -grad[t] > best_up) {
        best_up = -grad[t];
        i_up = static_cast<int>(t);
      }
      if (alpha[t] > kTau && -grad[t] < worst_low) {
        worst_low = -grad[t];
        j_low = static_cast<int>(t);
      }
    }
    if (i_up < 0 || j_low < 0 || best_up - worst_low < options_.tolerance) {
      break;  // KKT conditions satisfied
    }

    const size_t i = static_cast<size_t>(i_up);
    const size_t j = static_cast<size_t>(j_low);
    const double quad =
        std::max(gram.At(i, i) + gram.At(j, j) - 2.0 * gram.At(i, j), kTau);
    double delta = (grad[j] - grad[i]) / quad;
    // Box clipping: alpha_i += delta, alpha_j -= delta.
    delta = std::min(delta, c - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= 0.0) break;  // numerically stuck at a vertex

    alpha[i] += delta;
    alpha[j] -= delta;
    ops.axpy_diff(delta, gram.RowPtr(i), gram.RowPtr(j), n, grad.data());
  }

  // rho: decision threshold. For free support vectors the KKT conditions
  // give G_i = rho; average them. Fall back to the bound midpoint.
  double rho;
  {
    double free_sum = 0.0;
    size_t free_count = 0;
    double upper = std::numeric_limits<double>::infinity();   // min G, alpha=0
    double lower = -std::numeric_limits<double>::infinity();  // max G, alpha=c
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] > kTau && alpha[t] < c - kTau) {
        free_sum += grad[t];
        ++free_count;
      } else if (alpha[t] <= kTau) {
        upper = std::min(upper, grad[t]);
      } else {
        lower = std::max(lower, grad[t]);
      }
    }
    if (free_count > 0) {
      rho = free_sum / static_cast<double>(free_count);
    } else {
      if (!std::isfinite(upper)) upper = lower;
      if (!std::isfinite(lower)) lower = upper;
      rho = (upper + lower) / 2.0;
    }
  }

  OneClassSvmModel model;
  model.kernel_ = options_.kernel;
  model.rho_ = rho;
  model.iterations_used_ = iterations;
  size_t rejected = 0;
  for (size_t t = 0; t < n; ++t) {
    if (alpha[t] > kTau) {
      model.support_vectors_.push_back(points[t]);
      model.coefficients_.push_back(alpha[t]);
    }
    if (grad[t] - rho < 0.0) ++rejected;
  }
  model.training_outlier_fraction_ =
      static_cast<double>(rejected) / static_cast<double>(n);
  MIVID_METRIC_OBSERVE("svm/smo_iterations", iterations);
  MIVID_METRIC_OBSERVE("svm/support_vectors",
                       model.support_vectors_.size());
  return model;
}

}  // namespace mivid

#include "svm/one_class_svm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

double OneClassSvmModel::DecisionValue(const Vec& x) const {
  const PreparedKernel kernel(kernel_);
  double acc = 0.0;
  for (size_t i = 0; i < support_vectors_.size(); ++i) {
    acc += coefficients_[i] * kernel.Eval(support_vectors_[i], x);
  }
  return acc - rho_;
}

std::vector<double> OneClassSvmModel::DecisionValues(
    const std::vector<const Vec*>& xs) const {
  const PreparedKernel kernel(kernel_);
  std::vector<double> values(xs.size());
  ParallelFor(xs.size(), 16, [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      double acc = 0.0;
      for (size_t i = 0; i < support_vectors_.size(); ++i) {
        acc += coefficients_[i] * kernel.Eval(support_vectors_[i], *xs[q]);
      }
      values[q] = acc - rho_;
    }
  });
  return values;
}

Result<OneClassSvmModel> OneClassSvmTrainer::Train(
    const std::vector<Vec>& points) const {
  const size_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("one-class SVM needs at least one point");
  }
  const double nu = options_.nu;
  if (!(nu > 0.0 && nu <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("nu must be in (0, 1], got %g", nu));
  }
  for (const auto& p : points) {
    if (p.size() != points[0].size()) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }

  const GramMatrix gram(options_.kernel, points);
  return Train(points, gram);
}

Result<OneClassSvmModel> OneClassSvmTrainer::Train(
    const std::vector<Vec>& points, const GramMatrix& gram) const {
  MIVID_TRACE_SPAN("svm/smo");
  MIVID_SCOPED_TIMER("svm/train_seconds");
  const size_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("one-class SVM needs at least one point");
  }
  if (gram.size() != n) {
    return Status::InvalidArgument(
        StrFormat("gram size %zu does not match %zu points", gram.size(), n));
  }
  for (const auto& p : points) {
    if (p.size() != points[0].size()) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }
  const double nu = options_.nu;
  if (!(nu > 0.0 && nu <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("nu must be in (0, 1], got %g", nu));
  }
  const double c = 1.0 / (nu * static_cast<double>(n));

  // Feasible start: sum(alpha) = 1, 0 <= alpha <= c.
  Vec alpha(n, 0.0);
  {
    const size_t k = static_cast<size_t>(std::floor(nu * static_cast<double>(n)));
    double remaining = 1.0;
    for (size_t i = 0; i < k && i < n; ++i) {
      alpha[i] = c;
      remaining -= c;
    }
    if (k < n && remaining > 1e-15) alpha[k] = remaining;
  }

  // Gradient of 1/2 a^T Q a is Q a. Parallel over entries: each grad[j]
  // accumulates its sum over i in ascending order (the same order the
  // serial i-outer loop adds them), so the result is thread-independent.
  Vec grad(n, 0.0);
  ParallelFor(n, 64, [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (alpha[i] == 0.0) continue;
        acc += alpha[i] * gram.At(i, j);
      }
      grad[j] = acc;
    }
  });

  const double kTau = 1e-12;
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    // Working-set selection: i maximizes -G over the upward-movable set,
    // j minimizes -G over the downward-movable set.
    int i_up = -1, j_low = -1;
    double best_up = -std::numeric_limits<double>::infinity();
    double worst_low = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] < c - kTau && -grad[t] > best_up) {
        best_up = -grad[t];
        i_up = static_cast<int>(t);
      }
      if (alpha[t] > kTau && -grad[t] < worst_low) {
        worst_low = -grad[t];
        j_low = static_cast<int>(t);
      }
    }
    if (i_up < 0 || j_low < 0 || best_up - worst_low < options_.tolerance) {
      break;  // KKT conditions satisfied
    }

    const size_t i = static_cast<size_t>(i_up);
    const size_t j = static_cast<size_t>(j_low);
    const double quad =
        std::max(gram.At(i, i) + gram.At(j, j) - 2.0 * gram.At(i, j), kTau);
    double delta = (grad[j] - grad[i]) / quad;
    // Box clipping: alpha_i += delta, alpha_j -= delta.
    delta = std::min(delta, c - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= 0.0) break;  // numerically stuck at a vertex

    alpha[i] += delta;
    alpha[j] -= delta;
    for (size_t t = 0; t < n; ++t) {
      grad[t] += delta * (gram.At(i, t) - gram.At(j, t));
    }
  }

  // rho: decision threshold. For free support vectors the KKT conditions
  // give G_i = rho; average them. Fall back to the bound midpoint.
  double rho;
  {
    double free_sum = 0.0;
    size_t free_count = 0;
    double upper = std::numeric_limits<double>::infinity();   // min G, alpha=0
    double lower = -std::numeric_limits<double>::infinity();  // max G, alpha=c
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] > kTau && alpha[t] < c - kTau) {
        free_sum += grad[t];
        ++free_count;
      } else if (alpha[t] <= kTau) {
        upper = std::min(upper, grad[t]);
      } else {
        lower = std::max(lower, grad[t]);
      }
    }
    if (free_count > 0) {
      rho = free_sum / static_cast<double>(free_count);
    } else {
      if (!std::isfinite(upper)) upper = lower;
      if (!std::isfinite(lower)) lower = upper;
      rho = (upper + lower) / 2.0;
    }
  }

  OneClassSvmModel model;
  model.kernel_ = options_.kernel;
  model.rho_ = rho;
  model.iterations_used_ = iterations;
  size_t rejected = 0;
  for (size_t t = 0; t < n; ++t) {
    if (alpha[t] > kTau) {
      model.support_vectors_.push_back(points[t]);
      model.coefficients_.push_back(alpha[t]);
    }
    if (grad[t] - rho < 0.0) ++rejected;
  }
  model.training_outlier_fraction_ =
      static_cast<double>(rejected) / static_cast<double>(n);
  MIVID_METRIC_OBSERVE("svm/smo_iterations", iterations);
  MIVID_METRIC_OBSERVE("svm/support_vectors",
                       model.support_vectors_.size());
  return model;
}

}  // namespace mivid

// (De)serialization of trained one-class SVM models.
//
// Models learned in a relevance-feedback session can be persisted with the
// video database so a user's customized query resumes across sessions.
// Format: a small versioned binary layout (little-endian, fixed headers).

#ifndef MIVID_SVM_MODEL_IO_H_
#define MIVID_SVM_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "svm/one_class_svm.h"

namespace mivid {

/// Serializes `model` into a binary string.
std::string SerializeOneClassSvm(const OneClassSvmModel& model);

/// Parses a model serialized by SerializeOneClassSvm.
Result<OneClassSvmModel> DeserializeOneClassSvm(const std::string& bytes);

/// Writes the serialized model to `path`.
Status SaveOneClassSvm(const OneClassSvmModel& model, const std::string& path);

/// Reads a model from `path`.
Result<OneClassSvmModel> LoadOneClassSvm(const std::string& path);

}  // namespace mivid

#endif  // MIVID_SVM_MODEL_IO_H_

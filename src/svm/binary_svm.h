// Soft-margin binary Support Vector Machine (C-SVC) trained by SMO.
//
// Not used by the paper's primary method (which is one-class), but needed
// by the MI-SVM baseline of Andrews et al. [16], which the paper cites as
// the representative SVM approach to MIL. Dual:
//   min 1/2 sum_ij a_i a_j y_i y_j K(x_i,x_j) - sum_i a_i
//   s.t. 0 <= a_i <= C,  sum_i a_i y_i = 0
// Decision: f(x) = sum_i a_i y_i K(x_i, x) + b.

#ifndef MIVID_SVM_BINARY_SVM_H_
#define MIVID_SVM_BINARY_SVM_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "svm/kernel.h"

namespace mivid {

/// Training controls for C-SVC.
struct BinarySvmOptions {
  KernelParams kernel;
  double c = 1.0;            ///< soft-margin penalty
  double tolerance = 1e-3;   ///< KKT violation tolerance
  int max_iterations = 100000;
};

/// A trained binary classifier.
class BinarySvmModel {
 public:
  BinarySvmModel() = default;

  /// Signed decision value f(x); positive predicts class +1.
  double DecisionValue(const Vec& x) const;

  /// Hard prediction in {-1, +1}.
  int Predict(const Vec& x) const { return DecisionValue(x) >= 0 ? 1 : -1; }

  size_t num_support_vectors() const { return support_vectors_.size(); }
  const std::vector<Vec>& support_vectors() const { return support_vectors_; }
  /// alpha_i * y_i per support vector.
  const Vec& coefficients() const { return coefficients_; }
  double bias() const { return bias_; }
  const KernelParams& kernel() const { return kernel_; }

 private:
  friend class BinarySvmTrainer;

  KernelParams kernel_;
  std::vector<Vec> support_vectors_;
  Vec coefficients_;
  double bias_ = 0.0;
};

/// SMO trainer for C-SVC.
class BinarySvmTrainer {
 public:
  explicit BinarySvmTrainer(BinarySvmOptions options) : options_(options) {}

  /// Trains on `points` with labels in {-1, +1}. Requires at least one
  /// example of each class.
  Result<BinarySvmModel> Train(const std::vector<Vec>& points,
                               const std::vector<int>& labels) const;

 private:
  BinarySvmOptions options_;
};

}  // namespace mivid

#endif  // MIVID_SVM_BINARY_SVM_H_

// Model selection for the one-class SVM under MIL supervision.
//
// With only bag-level positive labels there is no classical validation
// loss, so candidates (sigma, nu) are scored by bag-holdout acceptance:
// leave out a fraction of the relevant bags, train on the rest, and prefer
// models that accept the held-out relevant bags' best instances while
// accepting little of a background sample. The criterion mirrors how the
// retrieval engine is used (max-instance ranking).

#ifndef MIVID_SVM_MODEL_SELECTION_H_
#define MIVID_SVM_MODEL_SELECTION_H_

#include <vector>

#include "common/status.h"
#include "svm/one_class_svm.h"

namespace mivid {

/// One candidate configuration and its validation score.
struct OneClassCandidate {
  double sigma = 0.5;
  double nu = 0.2;
  double holdout_acceptance = 0.0;    ///< held-out positives accepted
  double background_acceptance = 0.0; ///< background sample accepted
  double score = 0.0;                 ///< holdout - background
};

/// Grid-search controls.
struct OneClassGridOptions {
  std::vector<double> sigmas{0.1, 0.2, 0.4, 0.8, 1.6};
  std::vector<double> nus{0.05, 0.1, 0.2, 0.4};
  int folds = 3;  ///< bag-holdout folds (round-robin split)
};

/// Evaluates the grid. `positive_groups` holds the training vectors
/// grouped by source bag (held out per group, never per vector);
/// `background` is a sample of corpus vectors for the false-acceptance
/// term. Returns all candidates, best first. Requires >= 2 groups.
Result<std::vector<OneClassCandidate>> GridSearchOneClass(
    const std::vector<std::vector<Vec>>& positive_groups,
    const std::vector<Vec>& background,
    const OneClassGridOptions& options = {});

}  // namespace mivid

#endif  // MIVID_SVM_MODEL_SELECTION_H_

// Cross-round kernel cache for relevance-feedback sessions.
//
// Each feedback round retrains the One-class SVM on a training set that
// heavily overlaps the previous round's (the relevant bags accumulate).
// Recomputing the full Gram matrix every round therefore redoes O(H^2 d)
// work on pairs that did not change. This cache memoizes pairwise squared
// distances keyed by *stable instance ids* (bag_id, instance_id), which
// are invariant across rounds and across bandwidth changes:
//
//   K_rbf(i, j) = exp(-gamma (|u|^2 + |v|^2 - 2 u.v))
//
// only the gamma factor depends on sigma, so when auto_sigma re-tunes the
// bandwidth the cached distances stay valid and only the cheap exp() pass
// reruns (the sigma-dependent Gram values are never cached, which is what
// makes bandwidth invalidation a non-event).
//
// Storage is a growing dense "union matrix" over every instance the
// session has ever queried, with a validity mask per pair. Missing pairs
// are filled by streaming whole rows through the SIMD expanded-distance
// primitive (simd.h) against a packed SoA copy of the query points: a
// greedy cover picks the fewest query points whose full rows close all
// invalid pairs, those rows are computed in parallel, and the result
// matrix is then gathered with O(n^2) array reads — no hashing on the
// hot path. Distances use the same expanded formula and accumulation
// order as the uncached GramMatrix fast path, so cached and uncached
// Gram matrices are bit-identical.

#ifndef MIVID_SVM_KERNEL_CACHE_H_
#define MIVID_SVM_KERNEL_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"
#include "svm/kernel.h"

namespace mivid {

/// Stable identity of an instance across feedback rounds.
struct InstanceKey {
  int bag_id = -1;
  int instance_id = -1;
};

/// Session-scoped cache of pairwise squared distances between identified
/// instances. Not thread-safe; the parallel phase of
/// PairwiseSquaredDistances only touches cache state from the calling
/// thread.
class KernelCache {
 public:
  KernelCache() = default;

  /// Builds the full symmetric |points| x |points| squared-distance matrix,
  /// serving repeated pairs from the cache and computing missing pairs in
  /// parallel. `ids[i]` must be the stable identity of `points[i]`.
  Matrix PairwiseSquaredDistances(const std::vector<Vec>& points,
                                  const std::vector<InstanceKey>& ids);

  /// Drops everything (e.g. when the corpus is rebuilt).
  void Clear();

  size_t distance_entries() const { return entries_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  /// Union-matrix row for an instance id (first-seen order), growing the
  /// backing storage when a new id arrives.
  uint32_t RowFor(InstanceKey key);
  void Grow(size_t min_rows);

  double& CacheAt(size_t r, size_t c) { return cache_[r * cap_ + c]; }
  uint8_t& ValidAt(size_t r, size_t c) { return valid_[r * cap_ + c]; }

  std::unordered_map<uint64_t, uint32_t> row_of_;  // packed id -> union row
  size_t rows_ = 0;                 // union rows in use
  size_t cap_ = 0;                  // allocated square side
  std::vector<double> cache_;       // cap_ x cap_ squared distances
  std::vector<uint8_t> valid_;      // cap_ x cap_ validity mask
  size_t entries_ = 0;              // distinct valid pairs (r < c)
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace mivid

#endif  // MIVID_SVM_KERNEL_CACHE_H_

// Cross-round kernel cache for relevance-feedback sessions.
//
// Each feedback round retrains the One-class SVM on a training set that
// heavily overlaps the previous round's (the relevant bags accumulate).
// Recomputing the full Gram matrix every round therefore redoes O(H^2 d)
// work on pairs that did not change. This cache memoizes pairwise squared
// distances keyed by *stable instance ids* (bag_id, instance_id), which
// are invariant across rounds and across bandwidth changes:
//
//   K_rbf(i, j) = exp(-gamma (|u|^2 + |v|^2 - 2 u.v))
//
// only the gamma factor depends on sigma, so when auto_sigma re-tunes the
// bandwidth the cached distances stay valid and only the cheap exp() pass
// reruns (the sigma-dependent Gram values are never cached, which is what
// makes bandwidth invalidation a non-event).
//
// Distances are computed with ExpandedSquaredDistance — the same formula
// the uncached GramMatrix fast path uses — so cached and uncached Gram
// matrices are bit-identical.

#ifndef MIVID_SVM_KERNEL_CACHE_H_
#define MIVID_SVM_KERNEL_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"
#include "svm/kernel.h"

namespace mivid {

/// Stable identity of an instance across feedback rounds.
struct InstanceKey {
  int bag_id = -1;
  int instance_id = -1;
};

/// Session-scoped cache of pairwise squared distances (and kernel values)
/// between identified instances. Not thread-safe; the parallel phases of
/// PairwiseSquaredDistances only touch cache state from the calling thread.
class KernelCache {
 public:
  KernelCache() = default;

  /// Builds the full symmetric |points| x |points| squared-distance matrix,
  /// serving repeated pairs from the cache and computing missing pairs in
  /// parallel. `ids[i]` must be the stable identity of `points[i]`.
  Matrix PairwiseSquaredDistances(const std::vector<Vec>& points,
                                  const std::vector<InstanceKey>& ids);

  /// Drops everything (e.g. when the corpus is rebuilt).
  void Clear();

  size_t distance_entries() const { return d2_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  /// Dense index for an instance id (first-seen order), so pair keys fit
  /// in one uint64 with no collisions.
  uint32_t DenseIndex(InstanceKey key);
  static uint64_t PairKey(uint32_t a, uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::unordered_map<uint64_t, uint32_t> dense_index_;  // packed id -> index
  std::unordered_map<uint64_t, double> d2_;             // pair -> |u-v|^2
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace mivid

#endif  // MIVID_SVM_KERNEL_CACHE_H_

// One-class Support Vector Machine (Schölkopf et al. [18]; paper Sec. 5.2).
//
// Primal (paper Eq. 7-8):
//   min_{w, xi, rho}  1/2 |w|^2 - rho + 1/(nu n) sum_i xi_i
//   s.t.              (w . phi(x_i)) >= rho - xi_i,  xi_i >= 0
// where nu in (0, 1] is the paper's delta: the upper bound on the fraction
// of training outliers and lower bound on the fraction of support vectors.
//
// Solved in the dual by SMO (libsvm-style working-set selection):
//   min_alpha  1/2 sum_ij alpha_i alpha_j K(x_i, x_j)
//   s.t.       0 <= alpha_i <= 1/(nu n),   sum_i alpha_i = 1
// Decision function: f(x) = sign( sum_i alpha_i K(x_i, x) - rho ).

#ifndef MIVID_SVM_ONE_CLASS_SVM_H_
#define MIVID_SVM_ONE_CLASS_SVM_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/packed_matrix.h"
#include "svm/kernel.h"

namespace mivid {

/// Training controls.
struct OneClassSvmOptions {
  KernelParams kernel;
  double nu = 0.5;          ///< outlier fraction bound; the paper's delta
  double tolerance = 1e-4;  ///< KKT violation tolerance
  int max_iterations = 100000;
};

/// A trained one-class model.
class OneClassSvmModel {
 public:
  OneClassSvmModel() = default;

  /// Signed decision value f(x) = sum_i alpha_i K(sv_i, x) - rho.
  /// Positive inside the learned support region.
  double DecisionValue(const Vec& x) const;

  /// Decision values for a batch of points, evaluated in parallel.
  /// Each value is computed exactly as DecisionValue would (same
  /// accumulation order), so results are thread-count independent.
  /// Uniform-dimension batches are packed and routed through the SIMD
  /// batch path below; mixed dimensions fall back to pointwise Eval.
  std::vector<double> DecisionValues(const std::vector<const Vec*>& xs) const;

  /// SIMD batch path over an already-packed SoA point block (one support
  /// vector streamed across all points per pass). Bit-identical to
  /// calling DecisionValue on each point. `xs.dim()` must match the
  /// support vectors' dimension.
  std::vector<double> DecisionValues(const PackedFeatureMatrix& xs) const;

  /// Hard membership: DecisionValue(x) >= 0.
  bool Contains(const Vec& x) const { return DecisionValue(x) >= 0.0; }

  size_t num_support_vectors() const { return support_vectors_.size(); }
  const std::vector<Vec>& support_vectors() const { return support_vectors_; }
  const Vec& coefficients() const { return coefficients_; }
  double rho() const { return rho_; }
  const KernelParams& kernel() const { return kernel_; }
  int iterations_used() const { return iterations_used_; }

  /// Fraction of the training set the model rejected (f(x) < 0).
  double training_outlier_fraction() const {
    return training_outlier_fraction_;
  }

 private:
  friend class OneClassSvmTrainer;
  friend Result<OneClassSvmModel> DeserializeOneClassSvm(
      const std::string& bytes);

  KernelParams kernel_;
  std::vector<Vec> support_vectors_;
  Vec coefficients_;  ///< alpha_i for each support vector
  double rho_ = 0.0;
  int iterations_used_ = 0;
  double training_outlier_fraction_ = 0.0;
};

/// SMO trainer for the one-class dual.
class OneClassSvmTrainer {
 public:
  explicit OneClassSvmTrainer(OneClassSvmOptions options)
      : options_(options) {}

  /// Trains on `points` (all from the "relevant" class). Requires at least
  /// one point, equal dimensions, and nu in (0, 1].
  Result<OneClassSvmModel> Train(const std::vector<Vec>& points) const;

  /// Same, but reuses a precomputed Gram matrix over `points` (e.g. built
  /// through a KernelCache). `gram.size()` must equal `points.size()` and
  /// `gram` must have been built with this trainer's kernel params.
  Result<OneClassSvmModel> Train(const std::vector<Vec>& points,
                                 const GramMatrix& gram) const;

 private:
  OneClassSvmOptions options_;
};

}  // namespace mivid

#endif  // MIVID_SVM_ONE_CLASS_SVM_H_

#include "svm/kernel_cache.h"

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

namespace {

uint64_t PackId(InstanceKey key) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(key.bag_id)) << 32) |
         static_cast<uint32_t>(key.instance_id);
}

}  // namespace

uint32_t KernelCache::DenseIndex(InstanceKey key) {
  const uint64_t packed = PackId(key);
  auto [it, inserted] =
      dense_index_.emplace(packed, static_cast<uint32_t>(dense_index_.size()));
  return it->second;
}

Matrix KernelCache::PairwiseSquaredDistances(
    const std::vector<Vec>& points, const std::vector<InstanceKey>& ids) {
  MIVID_TRACE_SPAN("svm/kernel_cache");
  const size_t n = points.size();
  Matrix d2(n, n, 0.0);
  if (n == 0) return d2;
  const uint64_t hits_before = hits_;
  const uint64_t misses_before = misses_;

  // Phase 1 (serial): resolve ids, serve cached pairs, list the misses.
  std::vector<uint32_t> dense(n);
  for (size_t i = 0; i < n; ++i) dense[i] = DenseIndex(ids[i]);
  struct Missing {
    size_t i, j;
    uint64_t key;
  };
  std::vector<Missing> missing;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const uint64_t key = PairKey(dense[i], dense[j]);
      const auto it = d2_.find(key);
      if (it != d2_.end()) {
        ++hits_;
        d2.At(i, j) = it->second;
        d2.At(j, i) = it->second;
      } else {
        ++misses_;
        missing.push_back({i, j, key});
      }
    }
  }

  // Phase 2 (parallel): compute the missing pairs into their fixed slots.
  const std::vector<double> norms = SquaredNorms(points);
  std::vector<double> computed(missing.size());
  ParallelFor(missing.size(), 256, [&](size_t begin, size_t end) {
    for (size_t m = begin; m < end; ++m) {
      const auto& [i, j, key] = missing[m];
      (void)key;
      computed[m] =
          ExpandedSquaredDistance(points[i], norms[i], points[j], norms[j]);
    }
  });

  // Phase 3 (serial): publish results into the matrix and the cache.
  for (size_t m = 0; m < missing.size(); ++m) {
    const auto& [i, j, key] = missing[m];
    d2.At(i, j) = computed[m];
    d2.At(j, i) = computed[m];
    d2_.emplace(key, computed[m]);
  }
  MIVID_METRIC_COUNT("kernel_cache/hits", hits_ - hits_before);
  MIVID_METRIC_COUNT("kernel_cache/misses", misses_ - misses_before);
  return d2;
}

void KernelCache::Clear() {
  dense_index_.clear();
  d2_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace mivid

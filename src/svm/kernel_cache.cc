#include "svm/kernel_cache.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "linalg/packed_matrix.h"
#include "linalg/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

namespace {

uint64_t PackId(InstanceKey key) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(key.bag_id)) << 32) |
         static_cast<uint32_t>(key.instance_id);
}

constexpr size_t kDirtyRowGrain = 4;

}  // namespace

uint32_t KernelCache::RowFor(InstanceKey key) {
  const uint64_t packed = PackId(key);
  auto [it, inserted] =
      row_of_.emplace(packed, static_cast<uint32_t>(row_of_.size()));
  if (inserted) {
    ++rows_;
    if (rows_ > cap_) Grow(rows_);
  }
  return it->second;
}

void KernelCache::Grow(size_t min_rows) {
  size_t new_cap = cap_ == 0 ? 64 : cap_ * 2;
  while (new_cap < min_rows) new_cap *= 2;
  std::vector<double> cache(new_cap * new_cap, 0.0);
  std::vector<uint8_t> valid(new_cap * new_cap, 0);
  for (size_t r = 0; r < cap_; ++r) {
    std::copy_n(cache_.begin() + r * cap_, cap_, cache.begin() + r * new_cap);
    std::copy_n(valid_.begin() + r * cap_, cap_, valid.begin() + r * new_cap);
  }
  cache_ = std::move(cache);
  valid_ = std::move(valid);
  cap_ = new_cap;
}

Matrix KernelCache::PairwiseSquaredDistances(
    const std::vector<Vec>& points, const std::vector<InstanceKey>& ids) {
  MIVID_TRACE_SPAN("svm/kernel_cache");
  const size_t n = points.size();
  Matrix d2(n, n, 0.0);
  if (n == 0) return d2;
  const uint64_t hits_before = hits_;
  const uint64_t misses_before = misses_;

  // Phase 1 (serial): map ids to union rows, count hits/misses, and pick
  // the dirty set — a greedy cover of the invalid pairs by whole query
  // points. Scanning j ascending: if pair (i, j) is invalid and i is not
  // already dirty, j goes dirty; invalid pairs whose i is dirty are
  // covered by i's row recompute. Afterwards every invalid pair has at
  // least one dirty endpoint.
  std::vector<uint32_t> row(n);
  for (size_t i = 0; i < n; ++i) row[i] = RowFor(ids[i]);
  std::vector<uint8_t> dirty(n, 0);
  for (size_t j = 0; j < n; ++j) {
    const uint8_t* valid_row = valid_.data() + size_t{row[j]} * cap_;
    for (size_t i = 0; i < j; ++i) {
      if (valid_row[row[i]]) {
        ++hits_;
      } else {
        ++misses_;
        if (!dirty[i]) dirty[j] = 1;
      }
    }
  }
  std::vector<size_t> dirty_list;
  for (size_t j = 0; j < n; ++j) {
    if (dirty[j]) dirty_list.push_back(j);
  }

  if (!dirty_list.empty()) {
    // Phase 2 (parallel): stream each dirty point's full-width distance
    // row against a packed copy of the query set. Rows land in per-point
    // scratch slots, so chunks never share writes; pairs where both ends
    // are dirty get computed twice, but the expanded formula is exactly
    // symmetric, so both computations produce the same bits.
    std::vector<const Vec*> ptrs(n);
    for (size_t i = 0; i < n; ++i) ptrs[i] = &points[i];
    const PackedFeatureMatrix packed =
        PackedFeatureMatrix::FromPoints(ptrs, points[0].size());
    const double* norms = packed.squared_norms();
    const SimdOpsTable& ops = SimdOps();
    std::vector<double> scratch(dirty_list.size() * n);
    ParallelFor(dirty_list.size(), kDirtyRowGrain,
                [&](size_t begin, size_t end) {
                  for (size_t m = begin; m < end; ++m) {
                    const size_t q = dirty_list[m];
                    ops.expanded_d2_row(points[q].data(), norms[q],
                                        packed.dim(), packed.data(),
                                        packed.stride(), norms, n,
                                        scratch.data() + m * n);
                  }
                });

    // Phase 3 (serial): publish the fresh rows into the union matrix.
    for (size_t m = 0; m < dirty_list.size(); ++m) {
      const size_t q = dirty_list[m];
      const double* fresh = scratch.data() + m * n;
      const size_t rq = row[q];
      for (size_t i = 0; i < n; ++i) {
        if (i == q) continue;
        const size_t ri = row[i];
        if (!ValidAt(rq, ri)) {
          CacheAt(rq, ri) = fresh[i];
          CacheAt(ri, rq) = fresh[i];
          ValidAt(rq, ri) = 1;
          ValidAt(ri, rq) = 1;
          ++entries_;
        }
      }
    }
  }

  // Gather the result from the union matrix (diagonal is exactly 0).
  for (size_t i = 0; i < n; ++i) {
    const double* cache_row = cache_.data() + size_t{row[i]} * cap_;
    for (size_t j = 0; j < n; ++j) {
      d2.At(i, j) = (i == j) ? 0.0 : cache_row[row[j]];
    }
  }
  MIVID_METRIC_COUNT("kernel_cache/hits", hits_ - hits_before);
  MIVID_METRIC_COUNT("kernel_cache/misses", misses_ - misses_before);
  return d2;
}

void KernelCache::Clear() {
  row_of_.clear();
  rows_ = 0;
  cap_ = 0;
  cache_.clear();
  valid_.clear();
  entries_ = 0;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace mivid

// Kernel functions for the One-class SVM (paper Eq. 5-6).

#ifndef MIVID_SVM_KERNEL_H_
#define MIVID_SVM_KERNEL_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace mivid {

/// Supported kernel families.
enum class KernelType : uint8_t {
  kRbf = 0,     ///< exp(-|u - v|^2 / (2 sigma^2)); the paper's choice
  kLinear = 1,  ///< u . v
  kPoly = 2,    ///< (u . v + c)^d
};

/// Kernel configuration.
struct KernelParams {
  KernelType type = KernelType::kRbf;
  double sigma = 0.5;   ///< RBF bandwidth
  double poly_c = 1.0;  ///< polynomial offset
  int poly_degree = 3;
};

/// Evaluates K(u, v) under `params`.
double KernelEval(const KernelParams& params, const Vec& u, const Vec& v);

/// Precomputed symmetric kernel (Gram) matrix over a training set.
///
/// The one-class solver touches rows repeatedly; for the tiny training
/// sets of an RF session a full dense Gram matrix is the fastest cache.
class GramMatrix {
 public:
  GramMatrix(const KernelParams& params, const std::vector<Vec>& points);

  size_t size() const { return n_; }
  double At(size_t i, size_t j) const { return data_[i * n_ + j]; }

 private:
  size_t n_;
  std::vector<double> data_;
};

}  // namespace mivid

#endif  // MIVID_SVM_KERNEL_H_

// Kernel functions for the One-class SVM (paper Eq. 5-6).

#ifndef MIVID_SVM_KERNEL_H_
#define MIVID_SVM_KERNEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/matrix.h"

namespace mivid {

/// Supported kernel families.
enum class KernelType : uint8_t {
  kRbf = 0,     ///< exp(-|u - v|^2 / (2 sigma^2)); the paper's choice
  kLinear = 1,  ///< u . v
  kPoly = 2,    ///< (u . v + c)^d
};

/// Kernel configuration.
struct KernelParams {
  KernelType type = KernelType::kRbf;
  double sigma = 0.5;   ///< RBF bandwidth
  double poly_c = 1.0;  ///< polynomial offset
  int poly_degree = 3;
};

/// A kernel with its derived constants hoisted out of the evaluation loop
/// (the RBF gamma = 1/(2 sigma^2) division in particular). Construct once
/// per batch of evaluations, not per pair.
class PreparedKernel {
 public:
  explicit PreparedKernel(const KernelParams& params);

  const KernelParams& params() const { return params_; }
  double gamma() const { return gamma_; }

  /// K(u, v).
  double Eval(const Vec& u, const Vec& v) const;

  /// RBF value from a precomputed squared distance; valid only for kRbf.
  double EvalRbfFromSquaredDistance(double d2) const;

  /// K value from a precomputed dot product u.v; valid for kLinear/kPoly
  /// (the dot-product kernels). Bit-identical to Eval given the same dot.
  double EvalFromDot(double dot) const;

 private:
  KernelParams params_;
  double gamma_ = 0.0;  ///< 1/(2 sigma^2), RBF only
};

/// Evaluates K(u, v) under `params`. Prefer PreparedKernel in loops.
double KernelEval(const KernelParams& params, const Vec& u, const Vec& v);

/// |u - v|^2 via the expansion |u|^2 + |v|^2 - 2 u.v given precomputed
/// squared norms (clamped at 0 against cancellation). This is the one
/// formula every Gram/cache path uses, so cached and uncached entries are
/// bit-identical.
double ExpandedSquaredDistance(const Vec& u, double u_norm2, const Vec& v,
                               double v_norm2);

/// Squared norms |p_i|^2 for every point (computed in parallel).
std::vector<double> SquaredNorms(const std::vector<Vec>& points);

/// Precomputed symmetric kernel (Gram) matrix over a training set.
///
/// The one-class solver touches rows repeatedly; for the training sets of
/// an RF session a full dense Gram matrix is the fastest cache. Rows are
/// filled in parallel (entries are independent, so the result does not
/// depend on the thread count).
class GramMatrix {
 public:
  GramMatrix(const KernelParams& params, const std::vector<Vec>& points);

  /// RBF-only fast path: builds exp(-gamma * d2) from a precomputed
  /// squared-distance matrix (e.g. a KernelCache product).
  GramMatrix(const KernelParams& params, const Matrix& squared_distances);

  size_t size() const { return n_; }
  double At(size_t i, size_t j) const { return data_[i * n_ + j]; }

  /// Contiguous row i (n() doubles) — the SMO axpy updates stream these.
  const double* RowPtr(size_t i) const { return data_.get() + i * n_; }

 private:
  size_t n_;
  // Raw buffer, not a vector: every cell is written by construction
  // (triangle pass + mirror), so the vector's n^2 zero-fill — ~8 MB of
  // memset at n = 1024 — would be pure overhead on the training hot path.
  std::unique_ptr<double[]> data_;
};

}  // namespace mivid

#endif  // MIVID_SVM_KERNEL_H_

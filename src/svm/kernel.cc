#include "svm/kernel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/thread_pool.h"
#include "linalg/packed_matrix.h"
#include "linalg/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

namespace {

/// x^d by repeated multiplication: for the small integer degrees used by
/// polynomial kernels this is both faster and more predictable than
/// std::pow. Falls back to std::pow for large or negative degrees.
double IntPow(double x, int d) {
  if (d < 0 || d > 16) return std::pow(x, d);
  double acc = 1.0;
  double base = x;
  for (int e = d; e > 0; e >>= 1) {
    if (e & 1) acc *= base;
    base *= base;
  }
  return acc;
}

/// Grain for row-parallel Gram construction: small enough to load-balance
/// the triangular work, fixed so the decomposition is thread-independent.
constexpr size_t kGramRowGrain = 4;

/// Copies the computed upper triangle into the lower one. The naive
/// per-element mirror reads a full matrix column per row — a cache miss
/// per element at large n — so copy in 32x32 tiles instead: each tile's
/// source block is 8 KB of contiguous rows that stays resident while the
/// transposed writes stream out. Runs after the triangle phase completes;
/// chunks own whole destination row blocks, so writes never race and
/// reads only touch phase-1 output.
void MirrorLowerTriangle(size_t n, double* data) {
  constexpr size_t kTile = 32;
  const size_t blocks = (n + kTile - 1) / kTile;
  ParallelFor(blocks, 1, [&](size_t bb, size_t be) {
    for (size_t b = bb; b < be; ++b) {
      const size_t i0 = b * kTile;
      const size_t i1 = std::min(n, i0 + kTile);
      for (size_t j0 = 0; j0 < i1; j0 += kTile) {
        const size_t j1 = std::min(n, j0 + kTile);
        for (size_t i = i0; i < i1; ++i) {
          const size_t jend = std::min(j1, i);
          for (size_t j = j0; j < jend; ++j) {
            data[i * n + j] = data[j * n + i];
          }
        }
      }
    }
  });
}

void RecordGramBuild(size_t n) {
  MIVID_METRIC_COUNT("gram/builds", 1);
  MIVID_METRIC_COUNT("gram/entries", n * n);
  MIVID_METRIC_GAUGE_SET("simd/dispatch_tier",
                         static_cast<double>(ActiveSimdTier()));
  // Triangle cells actually streamed through the row kernels.
  MIVID_METRIC_COUNT("simd/kernel_row_cells", n * (n + 1) / 2);
}

}  // namespace

PreparedKernel::PreparedKernel(const KernelParams& params) : params_(params) {
  if (params_.type == KernelType::kRbf) {
    gamma_ = 1.0 / (2.0 * params_.sigma * params_.sigma);
  }
}

double PreparedKernel::Eval(const Vec& u, const Vec& v) const {
  switch (params_.type) {
    case KernelType::kRbf:
      return DetExp(-gamma_ * SquaredDistance(u, v));
    case KernelType::kLinear:
      return Dot(u, v);
    case KernelType::kPoly:
      return IntPow(Dot(u, v) + params_.poly_c, params_.poly_degree);
  }
  return 0.0;
}

double PreparedKernel::EvalRbfFromSquaredDistance(double d2) const {
  return DetExp(-gamma_ * d2);
}

double PreparedKernel::EvalFromDot(double dot) const {
  switch (params_.type) {
    case KernelType::kRbf:
      break;  // an RBF value is not a function of the dot product alone
    case KernelType::kLinear:
      return dot;
    case KernelType::kPoly:
      return IntPow(dot + params_.poly_c, params_.poly_degree);
  }
  assert(false && "EvalFromDot is only valid for dot-product kernels");
  return 0.0;
}

double KernelEval(const KernelParams& params, const Vec& u, const Vec& v) {
  return PreparedKernel(params).Eval(u, v);
}

double ExpandedSquaredDistance(const Vec& u, double u_norm2, const Vec& v,
                               double v_norm2) {
  const double d2 = u_norm2 + v_norm2 - 2.0 * Dot(u, v);
  return d2 > 0.0 ? d2 : 0.0;
}

std::vector<double> SquaredNorms(const std::vector<Vec>& points) {
  std::vector<double> norms(points.size());
  ParallelFor(points.size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      norms[i] = Dot(points[i], points[i]);
    }
  });
  return norms;
}

// Both constructors build the upper triangle with the SIMD row kernels
// (row i covers columns [i, n) — each row is owned by exactly one
// ParallelFor chunk, so there are no concurrent writes), then mirror in a
// second pass. The mirrored value is the bit the (j, i) computation would
// have produced: the expanded d2 is symmetric because IEEE addition and
// multiplication commute and both sides accumulate k in the same serial
// order. The diagonal needs no special case: u_norm2 and the streamed dot
// accumulate the same products in the same order, so d2(i,i) is exactly
// 0.0 and the RBF row maps it to exactly 1.0.
GramMatrix::GramMatrix(const KernelParams& params,
                       const std::vector<Vec>& points)
    : n_(points.size()),
      data_(new double[points.size() * points.size()]) {
  MIVID_TRACE_SPAN("svm/gram");
  MIVID_SCOPED_TIMER("gram/build_seconds");
  RecordGramBuild(n_);
  if (n_ == 0) return;
  const PreparedKernel kernel(params);
  const PackedFeatureMatrix packed = PackedFeatureMatrix::FromVecs(points);
  const size_t dim = packed.dim();
  const size_t stride = packed.stride();
  const double* norms = packed.squared_norms();
  const SimdOpsTable& ops = SimdOps();
  if (params.type == KernelType::kRbf) {
    const double gamma = kernel.gamma();
    ParallelFor(n_, kGramRowGrain, [&](size_t begin, size_t end) {
      std::vector<double> d2(n_);
      for (size_t i = begin; i < end; ++i) {
        const size_t count = n_ - i;
        ops.expanded_d2_row(points[i].data(), norms[i], dim,
                            packed.data() + i, stride, norms + i, count,
                            d2.data());
        ops.rbf_from_d2_row(gamma, d2.data(), count, &data_[i * n_ + i]);
      }
    });
  } else {
    ParallelFor(n_, kGramRowGrain, [&](size_t begin, size_t end) {
      std::vector<double> dots(n_);
      for (size_t i = begin; i < end; ++i) {
        const size_t count = n_ - i;
        ops.dot_row(points[i].data(), dim, packed.data() + i, stride, count,
                    dots.data());
        double* row = &data_[i * n_ + i];
        for (size_t t = 0; t < count; ++t) row[t] = kernel.EvalFromDot(dots[t]);
      }
    });
  }
  MirrorLowerTriangle(n_, data_.get());
}

GramMatrix::GramMatrix(const KernelParams& params,
                       const Matrix& squared_distances)
    : n_(squared_distances.rows()),
      data_(new double[squared_distances.rows() * squared_distances.rows()]) {
  MIVID_TRACE_SPAN("svm/gram");
  MIVID_SCOPED_TIMER("gram/build_seconds");
  RecordGramBuild(n_);
  // A squared-distance matrix only determines the Gram for RBF kernels.
  assert(params.type == KernelType::kRbf);
  const PreparedKernel kernel(params);
  const double gamma = kernel.gamma();
  const SimdOpsTable& ops = SimdOps();
  ParallelFor(n_, kGramRowGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ops.rbf_from_d2_row(gamma, squared_distances.data() + i * n_ + i,
                          n_ - i, &data_[i * n_ + i]);
    }
  });
  MirrorLowerTriangle(n_, data_.get());
}

}  // namespace mivid

#include "svm/kernel.h"

#include <cmath>

namespace mivid {

double KernelEval(const KernelParams& params, const Vec& u, const Vec& v) {
  switch (params.type) {
    case KernelType::kRbf: {
      const double gamma = 1.0 / (2.0 * params.sigma * params.sigma);
      return std::exp(-gamma * SquaredDistance(u, v));
    }
    case KernelType::kLinear:
      return Dot(u, v);
    case KernelType::kPoly:
      return std::pow(Dot(u, v) + params.poly_c, params.poly_degree);
  }
  return 0.0;
}

GramMatrix::GramMatrix(const KernelParams& params,
                       const std::vector<Vec>& points)
    : n_(points.size()), data_(points.size() * points.size()) {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i; j < n_; ++j) {
      const double k = KernelEval(params, points[i], points[j]);
      data_[i * n_ + j] = k;
      data_[j * n_ + i] = k;
    }
  }
}

}  // namespace mivid

#include "svm/kernel.h"

#include <cassert>
#include <cmath>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

namespace {

/// x^d by repeated multiplication: for the small integer degrees used by
/// polynomial kernels this is both faster and more predictable than
/// std::pow. Falls back to std::pow for large or negative degrees.
double IntPow(double x, int d) {
  if (d < 0 || d > 16) return std::pow(x, d);
  double acc = 1.0;
  double base = x;
  for (int e = d; e > 0; e >>= 1) {
    if (e & 1) acc *= base;
    base *= base;
  }
  return acc;
}

/// Grain for row-parallel Gram construction: small enough to load-balance
/// the triangular work, fixed so the decomposition is thread-independent.
constexpr size_t kGramRowGrain = 4;

}  // namespace

PreparedKernel::PreparedKernel(const KernelParams& params) : params_(params) {
  if (params_.type == KernelType::kRbf) {
    gamma_ = 1.0 / (2.0 * params_.sigma * params_.sigma);
  }
}

double PreparedKernel::Eval(const Vec& u, const Vec& v) const {
  switch (params_.type) {
    case KernelType::kRbf:
      return std::exp(-gamma_ * SquaredDistance(u, v));
    case KernelType::kLinear:
      return Dot(u, v);
    case KernelType::kPoly:
      return IntPow(Dot(u, v) + params_.poly_c, params_.poly_degree);
  }
  return 0.0;
}

double PreparedKernel::EvalRbfFromSquaredDistance(double d2) const {
  return std::exp(-gamma_ * d2);
}

double KernelEval(const KernelParams& params, const Vec& u, const Vec& v) {
  return PreparedKernel(params).Eval(u, v);
}

double ExpandedSquaredDistance(const Vec& u, double u_norm2, const Vec& v,
                               double v_norm2) {
  const double d2 = u_norm2 + v_norm2 - 2.0 * Dot(u, v);
  return d2 > 0.0 ? d2 : 0.0;
}

std::vector<double> SquaredNorms(const std::vector<Vec>& points) {
  std::vector<double> norms(points.size());
  ParallelFor(points.size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      norms[i] = Dot(points[i], points[i]);
    }
  });
  return norms;
}

GramMatrix::GramMatrix(const KernelParams& params,
                       const std::vector<Vec>& points)
    : n_(points.size()), data_(points.size() * points.size()) {
  MIVID_TRACE_SPAN("svm/gram");
  MIVID_SCOPED_TIMER("gram/build_seconds");
  MIVID_METRIC_COUNT("gram/builds", 1);
  MIVID_METRIC_COUNT("gram/entries", n_ * n_);
  const PreparedKernel kernel(params);
  if (params.type == KernelType::kRbf) {
    // RBF fast path: K(i,j) = exp(-gamma (|u|^2 + |v|^2 - 2 u.v)) with the
    // squared norms hoisted out of the O(n^2) pair loop.
    const std::vector<double> norms = SquaredNorms(points);
    ParallelFor(n_, kGramRowGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        data_[i * n_ + i] = 1.0;  // exp(0); the expansion is exactly 0 here
        for (size_t j = i + 1; j < n_; ++j) {
          const double d2 =
              ExpandedSquaredDistance(points[i], norms[i], points[j], norms[j]);
          const double k = kernel.EvalRbfFromSquaredDistance(d2);
          data_[i * n_ + j] = k;
          data_[j * n_ + i] = k;
        }
      }
    });
    return;
  }
  ParallelFor(n_, kGramRowGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i; j < n_; ++j) {
        const double k = kernel.Eval(points[i], points[j]);
        data_[i * n_ + j] = k;
        data_[j * n_ + i] = k;
      }
    }
  });
}

GramMatrix::GramMatrix(const KernelParams& params,
                       const Matrix& squared_distances)
    : n_(squared_distances.rows()),
      data_(squared_distances.rows() * squared_distances.rows()) {
  MIVID_TRACE_SPAN("svm/gram");
  MIVID_SCOPED_TIMER("gram/build_seconds");
  MIVID_METRIC_COUNT("gram/builds", 1);
  MIVID_METRIC_COUNT("gram/entries", n_ * n_);
  // A squared-distance matrix only determines the Gram for RBF kernels.
  assert(params.type == KernelType::kRbf);
  const PreparedKernel kernel(params);
  ParallelFor(n_, kGramRowGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i; j < n_; ++j) {
        const double k =
            kernel.EvalRbfFromSquaredDistance(squared_distances.At(i, j));
        data_[i * n_ + j] = k;
        data_[j * n_ + i] = k;
      }
    }
  });
}

}  // namespace mivid

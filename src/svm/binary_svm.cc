#include "svm/binary_svm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace mivid {

double BinarySvmModel::DecisionValue(const Vec& x) const {
  double acc = bias_;
  for (size_t i = 0; i < support_vectors_.size(); ++i) {
    acc += coefficients_[i] * KernelEval(kernel_, support_vectors_[i], x);
  }
  return acc;
}

Result<BinarySvmModel> BinarySvmTrainer::Train(
    const std::vector<Vec>& points, const std::vector<int>& labels) const {
  const size_t n = points.size();
  if (n == 0 || labels.size() != n) {
    return Status::InvalidArgument("points/labels size mismatch or empty");
  }
  bool has_pos = false, has_neg = false;
  for (int y : labels) {
    if (y == 1) {
      has_pos = true;
    } else if (y == -1) {
      has_neg = true;
    } else {
      return Status::InvalidArgument("labels must be in {-1, +1}");
    }
  }
  if (!has_pos || !has_neg) {
    return Status::InvalidArgument("need at least one example of each class");
  }
  for (const auto& p : points) {
    if (p.size() != points[0].size()) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }
  const double c = options_.c;
  if (c <= 0) return Status::InvalidArgument("C must be positive");

  const GramMatrix gram(options_.kernel, points);
  Vec alpha(n, 0.0);
  // G_i = y_i * u_i - 1 with u_i = sum_j alpha_j y_j K_ij; starts at -1.
  Vec grad(n, -1.0);

  const double kTau = 1e-12;
  auto upward = [&](size_t t) {
    return (labels[t] == 1 && alpha[t] < c - kTau) ||
           (labels[t] == -1 && alpha[t] > kTau);
  };
  auto downward = [&](size_t t) {
    return (labels[t] == 1 && alpha[t] > kTau) ||
           (labels[t] == -1 && alpha[t] < c - kTau);
  };

  double m_final = 0.0, big_m_final = 0.0;
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    // Working-set selection (maximal violating pair).
    int i_sel = -1, j_sel = -1;
    double m = -std::numeric_limits<double>::infinity();
    double big_m = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < n; ++t) {
      const double v = -labels[t] * grad[t];
      if (upward(t) && v > m) {
        m = v;
        i_sel = static_cast<int>(t);
      }
      if (downward(t) && v < big_m) {
        big_m = v;
        j_sel = static_cast<int>(t);
      }
    }
    m_final = m;
    big_m_final = big_m;
    if (i_sel < 0 || j_sel < 0 || m - big_m < options_.tolerance) break;

    const size_t i = static_cast<size_t>(i_sel);
    const size_t j = static_cast<size_t>(j_sel);
    const double quad =
        std::max(gram.At(i, i) + gram.At(j, j) - 2.0 * gram.At(i, j), kTau);

    const double yi = labels[i], yj = labels[j];
    // Unconstrained step along the feasible direction, then box clipping.
    const double old_ai = alpha[i], old_aj = alpha[j];
    if (yi != yj) {
      const double delta = (-grad[i] - grad[j]) / quad;
      alpha[i] += delta;
      alpha[j] += delta;
      const double diff = old_ai - old_aj;
      if (alpha[i] > c) {
        alpha[i] = c;
        alpha[j] = c - diff;
      }
      if (alpha[j] > c) {
        alpha[j] = c;
        alpha[i] = c + diff;
      }
      if (alpha[i] < 0) {
        alpha[i] = 0;
        alpha[j] = -diff;
      }
      if (alpha[j] < 0) {
        alpha[j] = 0;
        alpha[i] = diff;
      }
    } else {
      const double delta = (grad[i] - grad[j]) / quad;
      alpha[i] -= delta;
      alpha[j] += delta;
      const double sum = old_ai + old_aj;
      if (alpha[i] > c) {
        alpha[i] = c;
        alpha[j] = sum - c;
      }
      if (alpha[j] > c) {
        alpha[j] = c;
        alpha[i] = sum - c;
      }
      if (alpha[i] < 0) {
        alpha[i] = 0;
        alpha[j] = sum;
      }
      if (alpha[j] < 0) {
        alpha[j] = 0;
        alpha[i] = sum;
      }
    }

    const double dai = alpha[i] - old_ai, daj = alpha[j] - old_aj;
    if (std::fabs(dai) < kTau && std::fabs(daj) < kTau) break;
    for (size_t t = 0; t < n; ++t) {
      grad[t] += labels[t] * (dai * yi * gram.At(i, t) +
                              daj * yj * gram.At(j, t));
    }
  }

  // Bias: average y_i - u_i over free support vectors; fall back to the
  // violating-pair midpoint.
  double free_sum = 0.0;
  size_t free_count = 0;
  for (size_t t = 0; t < n; ++t) {
    if (alpha[t] > kTau && alpha[t] < c - kTau) {
      free_sum += -labels[t] * grad[t];
      ++free_count;
    }
  }
  const double bias = free_count > 0
                          ? free_sum / static_cast<double>(free_count)
                          : (m_final + big_m_final) / 2.0;

  BinarySvmModel model;
  model.kernel_ = options_.kernel;
  model.bias_ = std::isfinite(bias) ? bias : 0.0;
  for (size_t t = 0; t < n; ++t) {
    if (alpha[t] > kTau) {
      model.support_vectors_.push_back(points[t]);
      model.coefficients_.push_back(alpha[t] * labels[t]);
    }
  }
  return model;
}

}  // namespace mivid

#include "svm/model_selection.h"

#include <algorithm>

namespace mivid {

Result<std::vector<OneClassCandidate>> GridSearchOneClass(
    const std::vector<std::vector<Vec>>& positive_groups,
    const std::vector<Vec>& background, const OneClassGridOptions& options) {
  if (positive_groups.size() < 2) {
    return Status::InvalidArgument(
        "grid search needs at least two positive bags to hold out");
  }
  for (const auto& group : positive_groups) {
    if (group.empty()) {
      return Status::InvalidArgument("empty positive group");
    }
  }
  const int folds =
      std::min<int>(options.folds, static_cast<int>(positive_groups.size()));

  std::vector<OneClassCandidate> candidates;
  for (double sigma : options.sigmas) {
    for (double nu : options.nus) {
      OneClassCandidate candidate;
      candidate.sigma = sigma;
      candidate.nu = nu;

      double holdout_total = 0, holdout_accepted = 0;
      double bg_total = 0, bg_accepted = 0;
      bool failed = false;
      for (int fold = 0; fold < folds; ++fold) {
        // Round-robin bag split.
        std::vector<Vec> train;
        std::vector<const std::vector<Vec>*> held;
        for (size_t g = 0; g < positive_groups.size(); ++g) {
          if (static_cast<int>(g % static_cast<size_t>(folds)) == fold) {
            held.push_back(&positive_groups[g]);
          } else {
            train.insert(train.end(), positive_groups[g].begin(),
                         positive_groups[g].end());
          }
        }
        if (train.empty() || held.empty()) continue;

        OneClassSvmOptions svm_options;
        svm_options.kernel.sigma = sigma;
        svm_options.nu = nu;
        Result<OneClassSvmModel> model =
            OneClassSvmTrainer(svm_options).Train(train);
        if (!model.ok()) {
          failed = true;
          break;
        }
        // A held-out bag counts as accepted when its best instance is
        // inside the support region (the max-instance ranking criterion).
        for (const std::vector<Vec>* group : held) {
          double best = -1e300;
          for (const Vec& v : *group) {
            best = std::max(best, model->DecisionValue(v));
          }
          holdout_accepted += best >= 0 ? 1 : 0;
          holdout_total += 1;
        }
        for (const Vec& v : background) {
          bg_accepted += model->DecisionValue(v) >= 0 ? 1 : 0;
          bg_total += 1;
        }
      }
      if (failed || holdout_total == 0) continue;
      candidate.holdout_acceptance = holdout_accepted / holdout_total;
      candidate.background_acceptance =
          bg_total > 0 ? bg_accepted / bg_total : 0.0;
      candidate.score =
          candidate.holdout_acceptance - candidate.background_acceptance;
      candidates.push_back(candidate);
    }
  }
  if (candidates.empty()) {
    return Status::Internal("no grid candidate could be evaluated");
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const OneClassCandidate& a, const OneClassCandidate& b) {
                     return a.score > b.score;
                   });
  return candidates;
}

}  // namespace mivid

#include "svm/model_io.h"

#include <cstdio>

#include "db/codec.h"

namespace mivid {

namespace {
constexpr uint32_t kModelMagic = 0x4d53564fu;  // "OVSM"
constexpr uint32_t kModelVersion = 1;
}  // namespace

std::string SerializeOneClassSvm(const OneClassSvmModel& model) {
  std::string body;
  PutFixed32(&body, kModelVersion);
  PutFixed32(&body, static_cast<uint32_t>(model.kernel().type));
  PutDouble(&body, model.kernel().sigma);
  PutDouble(&body, model.kernel().poly_c);
  PutFixed32(&body, static_cast<uint32_t>(model.kernel().poly_degree));
  PutDouble(&body, model.rho());
  PutVec(&body, model.coefficients());
  PutFixed32(&body, static_cast<uint32_t>(model.support_vectors().size()));
  for (const auto& sv : model.support_vectors()) PutVec(&body, sv);

  std::string out;
  PutFixed32(&out, kModelMagic);
  PutFixed32(&out, Crc32c(body));
  out += body;
  return out;
}

Result<OneClassSvmModel> DeserializeOneClassSvm(const std::string& bytes) {
  Decoder header(bytes);
  uint32_t magic, crc;
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&magic));
  if (magic != kModelMagic) {
    return Status::Corruption("not a one-class SVM model (bad magic)");
  }
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&crc));
  const std::string_view body(bytes.data() + 8, bytes.size() - 8);
  if (Crc32c(body) != crc) {
    return Status::Corruption("model checksum mismatch");
  }

  Decoder dec(body);
  uint32_t version, kernel_type, poly_degree, num_sv;
  OneClassSvmModel model;
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&version));
  if (version != kModelVersion) {
    return Status::NotSupported("unknown model version");
  }
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&kernel_type));
  if (kernel_type > static_cast<uint32_t>(KernelType::kPoly)) {
    return Status::Corruption("invalid kernel type");
  }
  model.kernel_.type = static_cast<KernelType>(kernel_type);
  MIVID_RETURN_IF_ERROR(dec.GetDouble(&model.kernel_.sigma));
  MIVID_RETURN_IF_ERROR(dec.GetDouble(&model.kernel_.poly_c));
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&poly_degree));
  model.kernel_.poly_degree = static_cast<int>(poly_degree);
  MIVID_RETURN_IF_ERROR(dec.GetDouble(&model.rho_));
  MIVID_RETURN_IF_ERROR(dec.GetVec(&model.coefficients_));
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&num_sv));
  if (num_sv != model.coefficients_.size()) {
    return Status::Corruption("coefficient / support-vector count mismatch");
  }
  model.support_vectors_.resize(num_sv);
  for (uint32_t i = 0; i < num_sv; ++i) {
    MIVID_RETURN_IF_ERROR(dec.GetVec(&model.support_vectors_[i]));
  }
  return model;
}

Status SaveOneClassSvm(const OneClassSvmModel& model, const std::string& path) {
  const std::string bytes = SerializeOneClassSvm(model);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<OneClassSvmModel> LoadOneClassSvm(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::IOError("cannot open " + path);
  std::string bytes;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);
  return DeserializeOneClassSvm(bytes);
}

}  // namespace mivid

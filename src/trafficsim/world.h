// TrafficWorld: steps a scripted traffic scene frame by frame.
//
// The world spawns vehicles per a deterministic schedule, drives them with
// the normal driver model, hands selected vehicles to incident executors at
// their scheduled frames, and records ground truth: the full per-frame
// trajectory of every vehicle plus the interval/participants of every
// incident. This is the repo's stand-in for the paper's real surveillance
// footage (see DESIGN.md, substitutions).

#ifndef MIVID_TRAFFICSIM_WORLD_H_
#define MIVID_TRAFFICSIM_WORLD_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trafficsim/driver.h"
#include "trafficsim/incident.h"
#include "trafficsim/road.h"
#include "trafficsim/vehicle.h"
#include "trajectory/trajectory.h"

namespace mivid {

/// One scheduled vehicle entry.
struct SpawnSpec {
  int frame = 0;        ///< frame at which the vehicle enters its lane
  int lane_id = 0;
  VehicleType type = VehicleType::kCar;
  double speed = 2.5;   ///< entry speed, px/frame
  uint8_t shade = 200;  ///< rendered body intensity
};

/// A complete scenario script: scene + spawn schedule + incident schedule.
struct ScenarioSpec {
  std::string name;
  RoadLayout layout;
  int total_frames = 1000;
  std::vector<SpawnSpec> spawns;          ///< ascending by frame
  std::vector<IncidentSpec> incidents;
  DriverParams driver;
  uint64_t seed = 42;
};

/// Ground truth emitted by a full simulation run.
struct GroundTruth {
  std::string scenario_name;
  int total_frames = 0;
  std::vector<Track> tracks;              ///< one per spawned vehicle
  std::vector<IncidentRecord> incidents;  ///< completed incident records

  /// True when vehicle `vehicle_id` takes part in an incident of one of
  /// `types` overlapping frames [lo, hi].
  bool VehicleInIncident(int vehicle_id, int lo, int hi,
                         const std::vector<IncidentType>& types) const;
};

/// The simulation engine.
class TrafficWorld {
 public:
  explicit TrafficWorld(ScenarioSpec spec);

  /// Advances one frame: spawn, incident control, normal driving, despawn.
  void Step();

  int frame() const { return frame_; }
  bool Done() const { return frame_ >= spec_.total_frames; }

  /// All vehicles (including inactive ones; check active()).
  const std::vector<VehicleState>& vehicles() const { return vehicles_; }

  /// Active-vehicle count this frame.
  int ActiveVehicleCount() const;

  /// Runs the remaining frames, optionally invoking `on_frame` after each
  /// step (for rendering), and returns the accumulated ground truth.
  GroundTruth Run(
      const std::function<void(const TrafficWorld&)>& on_frame = nullptr);

  const ScenarioSpec& spec() const { return spec_; }

 private:
  void SpawnDue();
  void DriveNormal();
  void RunIncidents();
  void DespawnExited();
  void RecordFrame();

  ScenarioSpec spec_;
  Rng rng_;
  int frame_ = 0;
  size_t next_spawn_ = 0;
  std::vector<VehicleState> vehicles_;

  struct PendingIncident {
    IncidentSpec spec;
    std::unique_ptr<IncidentExecutor> executor;
    bool started = false;
    bool finished = false;
  };
  std::vector<PendingIncident> pending_;

  std::map<int, Track> tracks_;  // vehicle id -> trajectory so far
  std::vector<IncidentRecord> completed_incidents_;
};

}  // namespace mivid

#endif  // MIVID_TRAFFICSIM_WORLD_H_

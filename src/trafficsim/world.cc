#include "trafficsim/world.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace mivid {

bool GroundTruth::VehicleInIncident(
    int vehicle_id, int lo, int hi,
    const std::vector<IncidentType>& types) const {
  for (const auto& rec : incidents) {
    if (!rec.Overlaps(lo, hi)) continue;
    if (std::find(types.begin(), types.end(), rec.type) == types.end()) {
      continue;
    }
    if (std::find(rec.vehicle_ids.begin(), rec.vehicle_ids.end(),
                  vehicle_id) != rec.vehicle_ids.end()) {
      return true;
    }
  }
  return false;
}

TrafficWorld::TrafficWorld(ScenarioSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {
  for (const auto& inc : spec_.incidents) {
    PendingIncident p;
    p.spec = inc;
    pending_.push_back(std::move(p));
  }
}

void TrafficWorld::SpawnDue() {
  while (next_spawn_ < spec_.spawns.size() &&
         spec_.spawns[next_spawn_].frame <= frame_) {
    const SpawnSpec& s = spec_.spawns[next_spawn_];
    VehicleState v;
    v.id = static_cast<int>(next_spawn_);
    v.type = s.type;
    v.shade = s.shade;
    v.mode = MotionMode::kLaneFollow;
    v.lane_id = s.lane_id;
    v.s = 0.0;
    v.speed = s.speed;
    const Lane& lane = spec_.layout.lane(s.lane_id);
    v.position = lane.PointAt(0.0);
    v.heading = lane.HeadingAt(0.0);
    vehicles_.push_back(v);
    ++next_spawn_;
  }
}

void TrafficWorld::DriveNormal() {
  // Collect incident-controlled ids so normal driving skips them.
  std::vector<int> controlled;
  for (const auto& p : pending_) {
    if (p.started && !p.finished) {
      const auto& ids = p.executor->controlled_ids();
      controlled.insert(controlled.end(), ids.begin(), ids.end());
    }
  }

  for (auto& v : vehicles_) {
    if (!v.active()) continue;
    if (std::find(controlled.begin(), controlled.end(), v.id) !=
        controlled.end()) {
      continue;
    }
    if (v.mode == MotionMode::kFree) {
      // A vehicle released from incident control (e.g. after a U-turn)
      // continues ballistically until it leaves the scene.
      v.position.x += v.speed * std::cos(v.heading);
      v.position.y += v.speed * std::sin(v.heading);
      continue;
    }
    if (v.mode != MotionMode::kLaneFollow) continue;
    const Lane& lane = spec_.layout.lane(v.lane_id);

    DriverView view;
    // Nearest same-lane vehicle ahead (by arclength). Free-mode vehicles
    // have left their lane (crashes veer off, U-turns reverse), so only
    // lane followers act as leaders.
    for (const auto& other : vehicles_) {
      if (other.id == v.id || !other.active()) continue;
      if (other.mode == MotionMode::kLaneFollow &&
          other.lane_id == v.lane_id && other.s > v.s) {
        const double gap =
            (other.s - v.s) -
            (DimsFor(other.type).length + DimsFor(v.type).length) / 2.0;
        if (!view.has_leader || gap < view.leader_gap) {
          view.has_leader = true;
          view.leader_gap = gap;
          view.leader_speed = other.speed;
        }
      }
    }
    // Red stop line ahead?
    if (lane.signal_group() >= 0 &&
        !spec_.layout.IsGreen(lane.signal_group(), frame_)) {
      const double gap = lane.stop_line_s() - v.s;
      if (gap > 0) {
        view.has_red_stop_line = true;
        view.stop_line_gap = gap;
      }
    }

    DriverParams params = spec_.driver;
    params.desired_speed = lane.speed_limit();
    AdvanceLaneFollow(&v, lane, params, view, &rng_);
  }
}

void TrafficWorld::RunIncidents() {
  // Refresh ownership flags so a new executor cannot bind a vehicle that
  // another executor is still driving.
  for (auto& v : vehicles_) v.incident_controlled = false;
  for (const auto& p : pending_) {
    if (!p.started || p.finished) continue;
    for (int id : p.executor->controlled_ids()) {
      for (auto& v : vehicles_) {
        if (v.id == id) v.incident_controlled = true;
      }
    }
  }

  for (auto& p : pending_) {
    if (p.finished) continue;
    if (!p.started) {
      if (frame_ < p.spec.trigger_frame) continue;
      if (p.executor == nullptr) {
        p.executor = MakeIncidentExecutor(p.spec, &rng_);
      }
      if (p.executor->TryStart(frame_, &vehicles_, spec_.layout)) {
        p.started = true;
        // Fall through: the executor also steps on its start frame so the
        // vehicle is never left undriven.
      } else {
        continue;
      }
    }
    if (!p.executor->Step(frame_, &vehicles_, spec_.layout)) {
      p.finished = true;
      completed_incidents_.push_back(p.executor->record());
    }
  }
}

void TrafficWorld::DespawnExited() {
  const double margin = 30.0;
  for (auto& v : vehicles_) {
    if (!v.active()) continue;
    if (v.mode == MotionMode::kLaneFollow) {
      const Lane& lane = spec_.layout.lane(v.lane_id);
      if (v.s >= lane.Length() - 1.0) v.mode = MotionMode::kInactive;
    } else if (v.mode == MotionMode::kFree) {
      // Free vehicles despawn when they leave the scene with margin,
      // unless an incident still controls them.
      bool controlled = false;
      for (const auto& p : pending_) {
        if (p.started && !p.finished) {
          const auto& ids = p.executor->controlled_ids();
          if (std::find(ids.begin(), ids.end(), v.id) != ids.end()) {
            controlled = true;
          }
        }
      }
      if (!controlled &&
          (v.position.x < -margin ||
           v.position.x > spec_.layout.width + margin ||
           v.position.y < -margin ||
           v.position.y > spec_.layout.height + margin)) {
        v.mode = MotionMode::kInactive;
      }
    }
  }
}

void TrafficWorld::RecordFrame() {
  for (const auto& v : vehicles_) {
    if (!v.active()) continue;
    // Only record while visible: the paper's tracker sees on-screen blobs.
    const BBox mbr = v.Mbr();
    if (mbr.max_x < 0 || mbr.min_x > spec_.layout.width || mbr.max_y < 0 ||
        mbr.min_y > spec_.layout.height) {
      continue;
    }
    Track& t = tracks_[v.id];
    t.id = v.id;
    t.points.push_back(TrackPoint{frame_, v.position, mbr});
  }
}

void TrafficWorld::Step() {
  SpawnDue();
  RunIncidents();
  DriveNormal();
  DespawnExited();
  RecordFrame();
  ++frame_;
}

int TrafficWorld::ActiveVehicleCount() const {
  int n = 0;
  for (const auto& v : vehicles_) n += v.active() ? 1 : 0;
  return n;
}

GroundTruth TrafficWorld::Run(
    const std::function<void(const TrafficWorld&)>& on_frame) {
  while (!Done()) {
    Step();
    if (on_frame) on_frame(*this);
  }
  GroundTruth gt;
  gt.scenario_name = spec_.name;
  gt.total_frames = spec_.total_frames;
  for (auto& [id, track] : tracks_) gt.tracks.push_back(std::move(track));
  gt.incidents = completed_incidents_;
  // Incidents still running at the end of the clip count up to the last
  // frame (the paper's clips end mid-scene too).
  for (const auto& p : pending_) {
    if (p.started && !p.finished) {
      IncidentRecord rec = p.executor->record();
      rec.end_frame = spec_.total_frames - 1;
      gt.incidents.push_back(rec);
    }
  }
  return gt;
}

}  // namespace mivid

#include "trafficsim/scenarios.h"

#include <algorithm>

namespace mivid {

namespace {

VehicleType RandomType(Rng* rng) {
  const double u = rng->Uniform();
  if (u < 0.55) return VehicleType::kCar;
  if (u < 0.75) return VehicleType::kSuv;
  if (u < 0.92) return VehicleType::kPickup;
  return VehicleType::kTruck;
}

uint8_t RandomShade(Rng* rng) {
  return static_cast<uint8_t>(rng->UniformInt(170, 235));
}

/// Spreads `count` incident triggers of `type` across [lo, hi] with jitter.
void ScheduleIncidents(std::vector<IncidentSpec>* out, IncidentType type,
                       int count, int lo, int hi, int hold_frames, Rng* rng) {
  if (count <= 0) return;
  const double span = static_cast<double>(hi - lo) / count;
  for (int i = 0; i < count; ++i) {
    IncidentSpec spec;
    spec.type = type;
    spec.trigger_frame = lo + static_cast<int>(
        span * i + rng->Uniform(0.15, 0.55) * span);
    spec.hold_frames = hold_frames;
    out->push_back(spec);
  }
}

}  // namespace

ScenarioSpec MakeTunnelScenario(const TunnelScenarioOptions& options) {
  ScenarioSpec spec;
  spec.name = "tunnel";
  spec.layout = MakeTunnelLayout();
  spec.total_frames = options.total_frames;
  spec.seed = options.seed;
  spec.driver.desired_speed = 3.0;

  Rng rng(options.seed);
  double t = rng.Uniform(5.0, 40.0);
  int lane = 0;
  while (t < options.total_frames - 60) {
    SpawnSpec s;
    s.frame = static_cast<int>(t);
    s.lane_id = lane;
    lane = 1 - lane;  // alternate lanes
    s.type = RandomType(&rng);
    s.shade = RandomShade(&rng);
    s.speed = rng.Uniform(2.6, 3.2);
    spec.spawns.push_back(s);
    t += rng.Uniform(options.min_spawn_gap, options.max_spawn_gap);
  }

  // Scatter incidents across the clip, leaving the edges clear.
  const int lo = 120, hi = options.total_frames - 200;
  ScheduleIncidents(&spec.incidents, IncidentType::kWallCrash,
                    options.num_wall_crashes, lo, hi, /*hold=*/15, &rng);
  ScheduleIncidents(&spec.incidents, IncidentType::kSuddenStop,
                    options.num_sudden_stops, lo, hi, /*hold=*/15, &rng);
  ScheduleIncidents(&spec.incidents, IncidentType::kSpeeding,
                    options.num_speeding, lo, hi, /*hold=*/0, &rng);
  ScheduleIncidents(&spec.incidents, IncidentType::kUTurn, options.num_uturns,
                    lo, hi, /*hold=*/0, &rng);
  std::sort(spec.incidents.begin(), spec.incidents.end(),
            [](const IncidentSpec& a, const IncidentSpec& b) {
              return a.trigger_frame < b.trigger_frame;
            });
  return spec;
}

ScenarioSpec MakeIntersectionScenario(
    const IntersectionScenarioOptions& options) {
  ScenarioSpec spec;
  spec.name = "intersection";
  spec.layout = MakeIntersectionLayout();
  spec.total_frames = options.total_frames;
  spec.seed = options.seed;
  spec.driver.desired_speed = 2.5;
  spec.driver.headway = 7.0;

  Rng rng(options.seed);
  double t = rng.Uniform(0.0, 10.0);
  while (t < options.total_frames - 40) {
    SpawnSpec s;
    s.frame = static_cast<int>(t);
    // ~30% of traffic takes a turning movement (lanes 4-5).
    s.lane_id = rng.Bernoulli(0.3) ? static_cast<int>(rng.UniformInt(4, 5))
                                   : static_cast<int>(rng.UniformInt(0, 3));
    s.type = RandomType(&rng);
    s.shade = RandomShade(&rng);
    s.speed = rng.Uniform(2.0, 2.6);
    spec.spawns.push_back(s);
    t += rng.Uniform(options.min_spawn_gap, options.max_spawn_gap);
  }

  const int lo = 60, hi = options.total_frames - 120;
  ScheduleIncidents(&spec.incidents, IncidentType::kCrossCollision,
                    options.num_cross_collisions, lo, hi, /*hold=*/12, &rng);
  ScheduleIncidents(&spec.incidents, IncidentType::kRearEnd,
                    options.num_rear_ends, lo, hi, /*hold=*/12, &rng);
  ScheduleIncidents(&spec.incidents, IncidentType::kUTurn, options.num_uturns,
                    lo, hi, /*hold=*/0, &rng);
  ScheduleIncidents(&spec.incidents, IncidentType::kSpeeding,
                    options.num_speeding, lo, hi, /*hold=*/0, &rng);
  std::sort(spec.incidents.begin(), spec.incidents.end(),
            [](const IncidentSpec& a, const IncidentSpec& b) {
              return a.trigger_frame < b.trigger_frame;
            });
  return spec;
}

}  // namespace mivid

// Normal (non-incident) driving behavior: car following and signal
// compliance. A simplified Intelligent-Driver-Model longitudinal law.

#ifndef MIVID_TRAFFICSIM_DRIVER_H_
#define MIVID_TRAFFICSIM_DRIVER_H_

#include "common/rng.h"
#include "trafficsim/road.h"
#include "trafficsim/vehicle.h"

namespace mivid {

/// Longitudinal driving parameters (pixels and frames as units).
struct DriverParams {
  double desired_speed = 3.0;    ///< free-flow target, px/frame
  double max_accel = 0.12;       ///< px/frame^2
  double comfort_decel = 0.25;   ///< px/frame^2
  double hard_decel = 0.8;       ///< emergency braking bound
  double min_gap = 6.0;          ///< standstill bumper gap, px
  double headway = 6.0;          ///< desired time headway, frames
  double speed_jitter = 0.06;    ///< per-frame random speed perturbation
  double wander_accel = 0.02;    ///< random lateral drift acceleration
  double max_wander = 3.0;       ///< lateral drift bound, px
};

/// What the driver can see ahead this frame.
struct DriverView {
  bool has_leader = false;
  double leader_gap = 1e9;    ///< bumper-to-bumper gap along the lane, px
  double leader_speed = 0.0;  ///< px/frame

  bool has_red_stop_line = false;
  double stop_line_gap = 1e9;  ///< distance to the stop line, px
};

/// Computes the longitudinal acceleration for a lane-following vehicle.
///
/// Combines an IDM-style car-following term with a virtual stationary
/// obstacle at a red stop line; returns the most restrictive deceleration.
double ComputeAcceleration(const VehicleState& vehicle,
                           const DriverParams& params, const DriverView& view);

/// Applies one integration step of lane-following motion.
/// Updates speed (with jitter), arclength, position and heading.
void AdvanceLaneFollow(VehicleState* vehicle, const Lane& lane,
                       const DriverParams& params, const DriverView& view,
                       Rng* rng);

}  // namespace mivid

#endif  // MIVID_TRAFFICSIM_DRIVER_H_

#include "trafficsim/driver.h"

#include <algorithm>
#include <cmath>

namespace mivid {

namespace {

/// IDM braking interaction term against an obstacle `gap` ahead moving at
/// `obstacle_speed`.
double IdmInteraction(const VehicleState& v, const DriverParams& p, double gap,
                      double obstacle_speed) {
  const double dv = v.speed - obstacle_speed;
  const double s_star =
      p.min_gap + std::max(0.0, v.speed * p.headway +
                                    v.speed * dv /
                                        (2.0 * std::sqrt(p.max_accel *
                                                         p.comfort_decel)));
  const double ratio = s_star / std::max(gap, 0.5);
  return -p.max_accel * ratio * ratio;
}

}  // namespace

double ComputeAcceleration(const VehicleState& vehicle,
                           const DriverParams& params,
                           const DriverView& view) {
  const double v_ratio = vehicle.speed / std::max(params.desired_speed, 1e-6);
  double accel = params.max_accel * (1.0 - std::pow(v_ratio, 4.0));

  if (view.has_leader) {
    accel += IdmInteraction(vehicle, params, view.leader_gap,
                            view.leader_speed);
  }
  if (view.has_red_stop_line) {
    // Treat the stop line as a stationary obstacle.
    accel = std::min(accel, params.max_accel +
                                IdmInteraction(vehicle, params,
                                               view.stop_line_gap, 0.0));
  }
  return std::clamp(accel, -params.hard_decel, params.max_accel);
}

void AdvanceLaneFollow(VehicleState* vehicle, const Lane& lane,
                       const DriverParams& params, const DriverView& view,
                       Rng* rng) {
  const double accel = ComputeAcceleration(*vehicle, params, view);
  double speed = vehicle->speed + accel;
  if (rng != nullptr && params.speed_jitter > 0) {
    speed += rng->Gaussian(0.0, params.speed_jitter);
  }
  vehicle->speed = std::clamp(speed, 0.0, params.desired_speed * 1.6);
  vehicle->s += vehicle->speed;
  vehicle->heading = lane.HeadingAt(vehicle->s);

  // In-lane wander: a damped random walk of the lateral offset, active
  // only while moving (a parked car does not drift).
  if (rng != nullptr && params.wander_accel > 0 && vehicle->speed > 0.3) {
    vehicle->lateral_v = 0.9 * vehicle->lateral_v +
                         rng->Gaussian(0.0, params.wander_accel) -
                         0.02 * vehicle->lateral;  // spring back to center
    vehicle->lateral =
        std::clamp(vehicle->lateral + vehicle->lateral_v, -params.max_wander,
                   params.max_wander);
  }
  const Point2 on_path = lane.PointAt(vehicle->s);
  const Vec2 normal{-std::sin(vehicle->heading), std::cos(vehicle->heading)};
  vehicle->position = on_path + normal * vehicle->lateral;
}

}  // namespace mivid

// Incident injection for the traffic simulator.
//
// The paper's query targets are incidents "such as car crash, bumping,
// U-turn and speeding" (Sec. 1). Each incident type is a small behavior
// state machine that takes over one or two vehicles at a scheduled frame,
// drives them through the abnormal maneuver, and logs a ground-truth record
// (type, frame interval, involved vehicle ids) used by the feedback oracle.

#ifndef MIVID_TRAFFICSIM_INCIDENT_H_
#define MIVID_TRAFFICSIM_INCIDENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "trafficsim/road.h"
#include "trafficsim/vehicle.h"

namespace mivid {

/// The incident vocabulary from the paper's introduction.
enum class IncidentType : uint8_t {
  kWallCrash = 0,      ///< speeding vehicle loses control, hits tunnel wall
  kSuddenStop = 1,     ///< hard braking to a standstill, then resume
  kRearEnd = 2,        ///< follower fails to brake, bumps its leader
  kCrossCollision = 3, ///< red-light runner strikes crossing traffic
  kUTurn = 4,          ///< illegal U-turn
  kSpeeding = 5,       ///< sustained driving far above the limit
};

const char* IncidentTypeName(IncidentType type);

/// Inverse of IncidentTypeName ("wall_crash", "sudden_stop", ...);
/// InvalidArgument on an unknown name. Used by the `ingest` wire
/// command to parse incident annotations.
Result<IncidentType> IncidentTypeFromName(std::string_view name);

/// True for incident types that a user querying "accidents" would label
/// relevant (crashes, bumps, sudden stops) as opposed to U-turns/speeding.
bool IsAccidentType(IncidentType type);

/// Scheduled incident in a scenario script.
struct IncidentSpec {
  IncidentType type = IncidentType::kSuddenStop;
  int trigger_frame = 0;     ///< first frame the executor may start
  int hold_frames = 30;      ///< post-impact standstill duration
};

/// Ground-truth record emitted once an incident has played out.
struct IncidentRecord {
  IncidentType type = IncidentType::kSuddenStop;
  int begin_frame = -1;  ///< first frame of abnormal behavior
  int end_frame = -1;    ///< last frame of abnormal behavior, inclusive
  std::vector<int> vehicle_ids;

  /// True when [begin_frame, end_frame] overlaps [lo, hi].
  bool Overlaps(int lo, int hi) const {
    return begin_frame >= 0 && begin_frame <= hi && end_frame >= lo;
  }
};

/// Drives one scheduled incident. The world calls TryStart each frame from
/// `trigger_frame` until the executor binds vehicles, then Step each frame
/// until it reports completion. Controlled vehicles are skipped by the
/// normal driving logic.
class IncidentExecutor {
 public:
  virtual ~IncidentExecutor() = default;

  /// Attempts to bind suitable vehicles at `frame`. Returns false to defer
  /// (e.g. no vehicle currently in a usable position).
  virtual bool TryStart(int frame, std::vector<VehicleState>* vehicles,
                        const RoadLayout& layout) = 0;

  /// Advances the maneuver one frame. Returns false when finished.
  virtual bool Step(int frame, std::vector<VehicleState>* vehicles,
                    const RoadLayout& layout) = 0;

  /// Vehicle ids currently controlled by this executor.
  const std::vector<int>& controlled_ids() const { return controlled_; }

  /// The ground-truth record (valid once the maneuver has started).
  const IncidentRecord& record() const { return record_; }

 protected:
  VehicleState* Find(std::vector<VehicleState>* vehicles, int id) const;

  std::vector<int> controlled_;
  IncidentRecord record_;
};

/// Factory for the executor matching `spec.type`.
std::unique_ptr<IncidentExecutor> MakeIncidentExecutor(const IncidentSpec& spec,
                                                       Rng* rng);

}  // namespace mivid

#endif  // MIVID_TRAFFICSIM_INCIDENT_H_

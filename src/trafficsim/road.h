// Road geometry for the traffic scene simulator.
//
// A RoadLayout is a set of lanes (polyline paths with arclength
// parameterization), optional walls (the tunnel scenario), and an optional
// signal plan (the intersection scenario). The two built-in layouts mirror
// the paper's two test clips: a tunnel and a road intersection.

#ifndef MIVID_TRAFFICSIM_ROAD_H_
#define MIVID_TRAFFICSIM_ROAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/geometry.h"

namespace mivid {

/// One driving lane: a polyline path vehicles follow, parameterized by
/// arclength s in [0, Length()].
class Lane {
 public:
  Lane() = default;
  Lane(int id, std::vector<Point2> waypoints, double speed_limit);

  int id() const { return id_; }
  double speed_limit() const { return speed_limit_; }
  double Length() const { return total_length_; }

  /// World position at arclength `s` (clamped to [0, Length()]).
  Point2 PointAt(double s) const;

  /// Path heading (radians) at arclength `s`.
  double HeadingAt(double s) const;

  /// Signal group controlling this lane's stop line, or -1 if uncontrolled.
  int signal_group() const { return signal_group_; }
  /// Arclength of the stop line; vehicles hold here on red.
  double stop_line_s() const { return stop_line_s_; }

  void SetStopLine(int group, double s) {
    signal_group_ = group;
    stop_line_s_ = s;
  }

 private:
  int id_ = -1;
  std::vector<Point2> waypoints_;
  std::vector<double> cumulative_;  // arclength at each waypoint
  double total_length_ = 0.0;
  double speed_limit_ = 3.0;
  int signal_group_ = -1;
  double stop_line_s_ = -1.0;
};

/// A complete static scene: lanes, walls, signal plan, image size.
struct RoadLayout {
  std::string name;
  int width = 320;   ///< rendered frame width in pixels
  int height = 240;  ///< rendered frame height in pixels
  std::vector<Lane> lanes;
  std::vector<BBox> walls;  ///< solid obstacles (tunnel side walls)
  uint8_t background_shade = 96;
  uint8_t road_shade = 64;
  std::vector<BBox> road_surface;  ///< drawn with road_shade

  /// Fixed-time signal plan: group g is green during its phase window.
  int num_signal_groups = 0;
  int signal_phase_frames = 0;  ///< frames per green phase

  /// True when signal `group` shows green at `frame`. Uncontrolled (-1)
  /// is always green.
  bool IsGreen(int group, int frame) const;

  const Lane& lane(int id) const { return lanes[static_cast<size_t>(id)]; }
};

/// Straight two-lane tunnel, eastbound, with side walls (paper clip 1).
RoadLayout MakeTunnelLayout();

/// Four-approach intersection with a fixed two-phase signal (paper clip 2).
RoadLayout MakeIntersectionLayout();

}  // namespace mivid

#endif  // MIVID_TRAFFICSIM_ROAD_H_

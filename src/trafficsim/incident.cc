#include "trafficsim/incident.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mivid {

const char* IncidentTypeName(IncidentType type) {
  switch (type) {
    case IncidentType::kWallCrash:
      return "wall_crash";
    case IncidentType::kSuddenStop:
      return "sudden_stop";
    case IncidentType::kRearEnd:
      return "rear_end";
    case IncidentType::kCrossCollision:
      return "cross_collision";
    case IncidentType::kUTurn:
      return "u_turn";
    case IncidentType::kSpeeding:
      return "speeding";
  }
  return "?";
}

Result<IncidentType> IncidentTypeFromName(std::string_view name) {
  static constexpr IncidentType kAll[] = {
      IncidentType::kWallCrash,      IncidentType::kSuddenStop,
      IncidentType::kRearEnd,        IncidentType::kCrossCollision,
      IncidentType::kUTurn,          IncidentType::kSpeeding,
  };
  for (IncidentType type : kAll) {
    if (name == IncidentTypeName(type)) return type;
  }
  return Status::InvalidArgument("unknown incident type: " +
                                 std::string(name));
}

bool IsAccidentType(IncidentType type) {
  switch (type) {
    case IncidentType::kWallCrash:
    case IncidentType::kSuddenStop:
    case IncidentType::kRearEnd:
    case IncidentType::kCrossCollision:
      return true;
    case IncidentType::kUTurn:
    case IncidentType::kSpeeding:
      return false;
  }
  return false;
}

VehicleState* IncidentExecutor::Find(std::vector<VehicleState>* vehicles,
                                     int id) const {
  for (auto& v : *vehicles) {
    if (v.id == id) return &v;
  }
  return nullptr;
}

namespace {

/// True when the vehicle is a sane pick: active, lane-following, not
/// already owned by another executor, visible with margin, and moving.
bool Pickable(const VehicleState& v, const RoadLayout& layout, double margin) {
  return v.active() && v.mode == MotionMode::kLaneFollow &&
         !v.incident_controlled && v.position.x > margin &&
         v.position.x < layout.width - margin && v.position.y > margin &&
         v.position.y < layout.height - margin && v.speed > 0.5;
}

// ---------------------------------------------------------------------------
// Wall crash (tunnel): speed up, veer into the wall, hard stop, sit, despawn.
// ---------------------------------------------------------------------------
class WallCrashExecutor : public IncidentExecutor {
 public:
  WallCrashExecutor(const IncidentSpec& spec, Rng* rng)
      : spec_(spec), rng_(rng) {
    record_.type = IncidentType::kWallCrash;
  }

  bool TryStart(int frame, std::vector<VehicleState>* vehicles,
                const RoadLayout& layout) override {
    if (layout.walls.empty()) return false;
    // Prefer a vehicle with room ahead to build speed before the veer.
    for (auto& v : *vehicles) {
      if (Pickable(v, layout, 40.0) && v.position.x < layout.width * 0.55) {
        controlled_ = {v.id};
        record_.begin_frame = frame;
        record_.vehicle_ids = {v.id};
        veer_up_ = v.lane_id == 0;  // lane 0 hugs the upper wall
        v.mode = MotionMode::kFree;
        phase_ = Phase::kSpeedUp;
        phase_frames_ = 0;
        return true;
      }
    }
    return false;
  }

  bool Step(int frame, std::vector<VehicleState>* vehicles,
            const RoadLayout& layout) override {
    VehicleState* v = Find(vehicles, controlled_[0]);
    if (v == nullptr || !v->active()) {
      record_.end_frame = frame;
      return false;
    }
    ++phase_frames_;
    switch (phase_) {
      case Phase::kSpeedUp:
        v->speed = std::min(v->speed + 0.35, 6.5);
        Integrate(v);
        if (phase_frames_ >= 10) {
          phase_ = Phase::kVeer;
          phase_frames_ = 0;
        }
        break;
      case Phase::kVeer: {
        v->heading += (veer_up_ ? -1.0 : 1.0) * 0.05;
        Integrate(v);
        bool hit = false;
        for (const auto& wall : layout.walls) {
          if (v->Mbr().Intersects(wall)) hit = true;
        }
        if (hit || phase_frames_ > 40) {
          phase_ = Phase::kStopped;
          phase_frames_ = 0;
          v->speed = 0.0;
          v->heading += rng_->Uniform(-0.3, 0.3);  // impact deflection
        }
        break;
      }
      case Phase::kStopped:
        v->speed = 0.0;
        if (phase_frames_ >= spec_.hold_frames) {
          v->mode = MotionMode::kInactive;  // scene cleared
          record_.end_frame = frame;
          return false;
        }
        break;
    }
    return true;
  }

 private:
  enum class Phase { kSpeedUp, kVeer, kStopped };

  static void Integrate(VehicleState* v) {
    v->position.x += v->speed * std::cos(v->heading);
    v->position.y += v->speed * std::sin(v->heading);
  }

  IncidentSpec spec_;
  Rng* rng_;
  Phase phase_ = Phase::kSpeedUp;
  int phase_frames_ = 0;
  bool veer_up_ = false;
};

// ---------------------------------------------------------------------------
// Sudden stop: hard braking to standstill, brief hold, resume driving.
// ---------------------------------------------------------------------------
class SuddenStopExecutor : public IncidentExecutor {
 public:
  explicit SuddenStopExecutor(const IncidentSpec& spec) : spec_(spec) {
    record_.type = IncidentType::kSuddenStop;
  }

  bool TryStart(int frame, std::vector<VehicleState>* vehicles,
                const RoadLayout& layout) override {
    for (auto& v : *vehicles) {
      if (Pickable(v, layout, 30.0)) {
        controlled_ = {v.id};
        record_.begin_frame = frame;
        record_.vehicle_ids = {v.id};
        phase_ = Phase::kBrake;
        phase_frames_ = 0;
        return true;
      }
    }
    return false;
  }

  bool Step(int frame, std::vector<VehicleState>* vehicles,
            const RoadLayout& layout) override {
    VehicleState* v = Find(vehicles, controlled_[0]);
    if (v == nullptr || !v->active()) {
      record_.end_frame = frame;
      return false;
    }
    const Lane& lane = layout.lane(v->lane_id);
    ++phase_frames_;
    switch (phase_) {
      case Phase::kBrake:
        v->speed = std::max(0.0, v->speed - 0.7);
        AdvanceAlongLane(v, lane);
        if (v->speed <= 0.0) {
          phase_ = Phase::kHold;
          phase_frames_ = 0;
        }
        break;
      case Phase::kHold:
        if (phase_frames_ >= spec_.hold_frames) {
          phase_ = Phase::kResume;
          phase_frames_ = 0;
        }
        break;
      case Phase::kResume:
        v->speed = std::min(lane.speed_limit(), v->speed + 0.15);
        AdvanceAlongLane(v, lane);
        if (v->speed >= lane.speed_limit() - 0.05) {
          v->mode = MotionMode::kLaneFollow;  // hand back to normal driving
          record_.end_frame = frame;
          return false;
        }
        break;
    }
    return true;
  }

 private:
  enum class Phase { kBrake, kHold, kResume };

  static void AdvanceAlongLane(VehicleState* v, const Lane& lane) {
    v->s += v->speed;
    v->position = lane.PointAt(v->s);
    v->heading = lane.HeadingAt(v->s);
  }

  IncidentSpec spec_;
  Phase phase_ = Phase::kBrake;
  int phase_frames_ = 0;
};

// ---------------------------------------------------------------------------
// Rear end: leader brakes hard; follower is distracted and bumps it.
// ---------------------------------------------------------------------------
class RearEndExecutor : public IncidentExecutor {
 public:
  RearEndExecutor(const IncidentSpec& spec, Rng* rng)
      : spec_(spec), rng_(rng) {
    record_.type = IncidentType::kRearEnd;
  }

  bool TryStart(int frame, std::vector<VehicleState>* vehicles,
                const RoadLayout& layout) override {
    // Find a (leader, follower) pair in the same lane with a closable gap.
    for (auto& lead : *vehicles) {
      if (!Pickable(lead, layout, 30.0)) continue;
      for (auto& fol : *vehicles) {
        if (fol.id == lead.id || fol.lane_id != lead.lane_id) continue;
        if (!fol.active() || fol.mode != MotionMode::kLaneFollow ||
            fol.incident_controlled) {
          continue;
        }
        const double gap = lead.s - fol.s;
        if (gap > 15.0 && gap < 90.0) {
          controlled_ = {lead.id, fol.id};
          record_.begin_frame = frame;
          record_.vehicle_ids = {lead.id, fol.id};
          phase_ = Phase::kClosing;
          phase_frames_ = 0;
          return true;
        }
      }
    }
    return false;
  }

  bool Step(int frame, std::vector<VehicleState>* vehicles,
            const RoadLayout& layout) override {
    VehicleState* lead = Find(vehicles, controlled_[0]);
    VehicleState* fol = Find(vehicles, controlled_[1]);
    if (lead == nullptr || fol == nullptr || !lead->active() ||
        !fol->active()) {
      record_.end_frame = frame;
      return false;
    }
    const Lane& lane = layout.lane(lead->lane_id);
    ++phase_frames_;
    switch (phase_) {
      case Phase::kClosing: {
        // Leader brakes hard; follower keeps rolling (distracted).
        lead->speed = std::max(0.0, lead->speed - 0.6);
        fol->speed = std::max(fol->speed, 2.2);
        Advance(lead, lane);
        Advance(fol, lane);
        const double bumper_gap =
            (lead->s - fol->s) -
            (DimsFor(lead->type).length + DimsFor(fol->type).length) / 2.0;
        if (bumper_gap <= 1.0) {
          // Impact: both stop, follower's nose deflects.
          lead->speed = 0.0;
          fol->speed = 0.0;
          fol->heading += rng_->Uniform(-0.25, 0.25);
          lead->s += 2.0;  // shunted forward
          lead->position = lane.PointAt(lead->s);
          phase_ = Phase::kStopped;
          phase_frames_ = 0;
        } else if (phase_frames_ > 80) {
          // Never closed (leader was too far ahead); abort gracefully.
          lead->mode = MotionMode::kLaneFollow;
          fol->mode = MotionMode::kLaneFollow;
          record_.end_frame = frame;
          return false;
        }
        break;
      }
      case Phase::kStopped:
        if (phase_frames_ >= spec_.hold_frames) {
          lead->mode = MotionMode::kInactive;
          fol->mode = MotionMode::kInactive;
          record_.end_frame = frame;
          return false;
        }
        break;
    }
    return true;
  }

 private:
  enum class Phase { kClosing, kStopped };

  static void Advance(VehicleState* v, const Lane& lane) {
    v->s += v->speed;
    v->position = lane.PointAt(v->s);
    v->heading = lane.HeadingAt(v->s);
  }

  IncidentSpec spec_;
  Rng* rng_;
  Phase phase_ = Phase::kClosing;
  int phase_frames_ = 0;
};

// ---------------------------------------------------------------------------
// Cross collision (intersection): a red-light runner times its approach to
// strike a crossing vehicle inside the conflict box.
// ---------------------------------------------------------------------------
class CrossCollisionExecutor : public IncidentExecutor {
 public:
  CrossCollisionExecutor(const IncidentSpec& spec, Rng* rng)
      : spec_(spec), rng_(rng) {
    record_.type = IncidentType::kCrossCollision;
  }

  bool TryStart(int frame, std::vector<VehicleState>* vehicles,
                const RoadLayout& layout) override {
    if (layout.lanes.size() < 4) return false;
    const Point2 center(static_cast<double>(layout.width) / 2,
                        static_cast<double>(layout.height) / 2);
    // Runner: approaching on a horizontal lane; victim: on a vertical lane.
    int runner = -1, victim = -1;
    double runner_d = 0, victim_d = 0;
    for (auto& v : *vehicles) {
      if (!v.active() || v.mode != MotionMode::kLaneFollow ||
          v.incident_controlled) {
        continue;
      }
      const Lane& lane = layout.lane(v.lane_id);
      const double d = DistanceToPointAlongLane(lane, v.s, center);
      if (d < 25.0 || d > 110.0) continue;
      // Runner comes from the straight horizontal lanes, victim from the
      // straight vertical lanes (the ETA pacing assumes straight paths).
      if (v.lane_id <= 1 && runner < 0) {
        runner = v.id;
        runner_d = d;
      } else if ((v.lane_id == 2 || v.lane_id == 3) && victim < 0 &&
                 v.speed > 0.8) {
        victim = v.id;
        victim_d = d;
      }
    }
    if (runner < 0 || victim < 0) return false;
    (void)runner_d;
    (void)victim_d;
    controlled_ = {runner, victim};
    record_.begin_frame = frame;
    record_.vehicle_ids = {runner, victim};
    phase_ = Phase::kApproach;
    phase_frames_ = 0;
    return true;
  }

  bool Step(int frame, std::vector<VehicleState>* vehicles,
            const RoadLayout& layout) override {
    VehicleState* runner = Find(vehicles, controlled_[0]);
    VehicleState* victim = Find(vehicles, controlled_[1]);
    if (runner == nullptr || victim == nullptr || !runner->active() ||
        !victim->active()) {
      record_.end_frame = frame;
      return false;
    }
    ++phase_frames_;
    switch (phase_) {
      case Phase::kApproach: {
        const Point2 center(static_cast<double>(layout.width) / 2,
                            static_cast<double>(layout.height) / 2);
        const Lane& rl = layout.lane(runner->lane_id);
        const Lane& vl = layout.lane(victim->lane_id);
        // Victim proceeds at its own pace; runner paces itself to arrive at
        // the conflict point simultaneously (and ignores the red light).
        const double dv = DistanceToPointAlongLane(vl, victim->s, center);
        const double dr = DistanceToPointAlongLane(rl, runner->s, center);
        victim->speed = std::max(victim->speed, 1.6);
        const double eta = dv / std::max(victim->speed, 0.5);
        runner->speed = std::clamp(dr / std::max(eta, 1.0), 1.8, 6.0);
        Advance(runner, rl);
        Advance(victim, vl);
        if (Distance(runner->position, victim->position) <
            (DimsFor(runner->type).length + DimsFor(victim->type).length) /
                2.0) {
          // Impact: both deflect and halt within a couple of frames.
          runner->mode = MotionMode::kFree;
          victim->mode = MotionMode::kFree;
          runner->heading += rng_->Uniform(0.5, 0.9);
          victim->heading -= rng_->Uniform(0.5, 0.9);
          runner->speed = 0.8;
          victim->speed = 0.8;
          phase_ = Phase::kImpact;
          phase_frames_ = 0;
        } else if (phase_frames_ > 120) {
          record_.end_frame = frame;  // missed; give up
          return false;
        }
        break;
      }
      case Phase::kImpact:
        IntegrateFree(runner);
        IntegrateFree(victim);
        runner->speed = std::max(0.0, runner->speed - 0.4);
        victim->speed = std::max(0.0, victim->speed - 0.4);
        if (phase_frames_ >= 4) {
          runner->speed = 0.0;
          victim->speed = 0.0;
          phase_ = Phase::kStopped;
          phase_frames_ = 0;
        }
        break;
      case Phase::kStopped:
        if (phase_frames_ >= spec_.hold_frames) {
          runner->mode = MotionMode::kInactive;
          victim->mode = MotionMode::kInactive;
          record_.end_frame = frame;
          return false;
        }
        break;
    }
    return true;
  }

 private:
  enum class Phase { kApproach, kImpact, kStopped };

  /// Signed remaining distance along the lane to the closest approach of
  /// `target`; large when already past it.
  static double DistanceToPointAlongLane(const Lane& lane, double s,
                                         const Point2& target) {
    // Lanes here are straight; project the target onto the lane direction.
    const Point2 here = lane.PointAt(s);
    const double heading = lane.HeadingAt(s);
    const Vec2 dir{std::cos(heading), std::sin(heading)};
    const double along = (target - here).Dot(dir);
    return along > 0 ? along : 1e9;
  }

  static void Advance(VehicleState* v, const Lane& lane) {
    v->s += v->speed;
    v->position = lane.PointAt(v->s);
    v->heading = lane.HeadingAt(v->s);
  }

  static void IntegrateFree(VehicleState* v) {
    v->position.x += v->speed * std::cos(v->heading);
    v->position.y += v->speed * std::sin(v->heading);
  }

  IncidentSpec spec_;
  Rng* rng_;
  Phase phase_ = Phase::kApproach;
  int phase_frames_ = 0;
};

// ---------------------------------------------------------------------------
// U-turn: slow down, swing through 180 degrees, drive back out.
// ---------------------------------------------------------------------------
class UTurnExecutor : public IncidentExecutor {
 public:
  explicit UTurnExecutor(const IncidentSpec& spec) : spec_(spec) {
    record_.type = IncidentType::kUTurn;
  }

  bool TryStart(int frame, std::vector<VehicleState>* vehicles,
                const RoadLayout& layout) override {
    for (auto& v : *vehicles) {
      if (Pickable(v, layout, 45.0)) {
        controlled_ = {v.id};
        record_.begin_frame = frame;
        record_.vehicle_ids = {v.id};
        v.mode = MotionMode::kFree;
        phase_ = Phase::kSlow;
        phase_frames_ = 0;
        turned_ = 0.0;
        return true;
      }
    }
    return false;
  }

  bool Step(int frame, std::vector<VehicleState>* vehicles,
            const RoadLayout& layout) override {
    (void)layout;
    VehicleState* v = Find(vehicles, controlled_[0]);
    if (v == nullptr || !v->active()) {
      record_.end_frame = frame;
      return false;
    }
    ++phase_frames_;
    switch (phase_) {
      case Phase::kSlow:
        v->speed = std::max(1.2, v->speed - 0.3);
        Integrate(v);
        if (v->speed <= 1.25) {
          phase_ = Phase::kTurn;
          phase_frames_ = 0;
        }
        break;
      case Phase::kTurn: {
        const double step = M_PI / 12.0;  // tight half circle in 12 frames
        v->heading += step;
        turned_ += step;
        Integrate(v);
        if (turned_ >= M_PI) {
          phase_ = Phase::kDepart;
          phase_frames_ = 0;
        }
        break;
      }
      case Phase::kDepart:
        v->speed = std::min(2.6, v->speed + 0.1);
        Integrate(v);
        if (phase_frames_ >= 10) {
          // The abnormal maneuver is over; the vehicle free-runs out of
          // frame and the world despawns it at the boundary.
          record_.end_frame = frame;
          return false;
        }
        break;
    }
    return true;
  }

 private:
  enum class Phase { kSlow, kTurn, kDepart };

  static void Integrate(VehicleState* v) {
    v->position.x += v->speed * std::cos(v->heading);
    v->position.y += v->speed * std::sin(v->heading);
  }

  IncidentSpec spec_;
  Phase phase_ = Phase::kSlow;
  int phase_frames_ = 0;
  double turned_ = 0.0;
};

// ---------------------------------------------------------------------------
// Speeding: sustained driving at roughly double the limit until exit.
// ---------------------------------------------------------------------------
class SpeedingExecutor : public IncidentExecutor {
 public:
  explicit SpeedingExecutor(const IncidentSpec& spec) : spec_(spec) {
    record_.type = IncidentType::kSpeeding;
  }

  bool TryStart(int frame, std::vector<VehicleState>* vehicles,
                const RoadLayout& layout) override {
    for (auto& v : *vehicles) {
      if (Pickable(v, layout, 25.0)) {
        controlled_ = {v.id};
        record_.begin_frame = frame;
        record_.vehicle_ids = {v.id};
        return true;
      }
    }
    return false;
  }

  bool Step(int frame, std::vector<VehicleState>* vehicles,
            const RoadLayout& layout) override {
    VehicleState* v = Find(vehicles, controlled_[0]);
    if (v == nullptr || !v->active()) {
      record_.end_frame = frame;
      return false;
    }
    const Lane& lane = layout.lane(v->lane_id);
    // Aggressive launch: floors it to well over twice the limit.
    const double target = lane.speed_limit() * 2.3;
    v->speed = std::min(target, v->speed + 0.7);
    v->s += v->speed;
    v->position = lane.PointAt(v->s);
    v->heading = lane.HeadingAt(v->s);
    if (v->s >= lane.Length() - 1.0) {
      v->mode = MotionMode::kInactive;
      record_.end_frame = frame;
      return false;
    }
    return true;
  }

 private:
  IncidentSpec spec_;
};

}  // namespace

std::unique_ptr<IncidentExecutor> MakeIncidentExecutor(const IncidentSpec& spec,
                                                       Rng* rng) {
  switch (spec.type) {
    case IncidentType::kWallCrash:
      return std::make_unique<WallCrashExecutor>(spec, rng);
    case IncidentType::kSuddenStop:
      return std::make_unique<SuddenStopExecutor>(spec);
    case IncidentType::kRearEnd:
      return std::make_unique<RearEndExecutor>(spec, rng);
    case IncidentType::kCrossCollision:
      return std::make_unique<CrossCollisionExecutor>(spec, rng);
    case IncidentType::kUTurn:
      return std::make_unique<UTurnExecutor>(spec);
    case IncidentType::kSpeeding:
      return std::make_unique<SpeedingExecutor>(spec);
  }
  return nullptr;
}

}  // namespace mivid

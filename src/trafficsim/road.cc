#include "trafficsim/road.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mivid {

Lane::Lane(int id, std::vector<Point2> waypoints, double speed_limit)
    : id_(id), waypoints_(std::move(waypoints)), speed_limit_(speed_limit) {
  assert(waypoints_.size() >= 2);
  cumulative_.resize(waypoints_.size(), 0.0);
  for (size_t i = 1; i < waypoints_.size(); ++i) {
    cumulative_[i] =
        cumulative_[i - 1] + Distance(waypoints_[i - 1], waypoints_[i]);
  }
  total_length_ = cumulative_.back();
}

Point2 Lane::PointAt(double s) const {
  s = std::clamp(s, 0.0, total_length_);
  // Find the segment containing s.
  size_t hi = 1;
  while (hi + 1 < cumulative_.size() && cumulative_[hi] < s) ++hi;
  const double seg_len = cumulative_[hi] - cumulative_[hi - 1];
  const double t = seg_len > 0 ? (s - cumulative_[hi - 1]) / seg_len : 0.0;
  return waypoints_[hi - 1] + (waypoints_[hi] - waypoints_[hi - 1]) * t;
}

double Lane::HeadingAt(double s) const {
  s = std::clamp(s, 0.0, total_length_);
  size_t hi = 1;
  while (hi + 1 < cumulative_.size() && cumulative_[hi] < s) ++hi;
  const Point2 d = waypoints_[hi] - waypoints_[hi - 1];
  return std::atan2(d.y, d.x);
}

bool RoadLayout::IsGreen(int group, int frame) const {
  if (group < 0 || num_signal_groups <= 0 || signal_phase_frames <= 0) {
    return true;
  }
  const int cycle = num_signal_groups * signal_phase_frames;
  const int phase = (frame % cycle) / signal_phase_frames;
  return phase == group;
}

RoadLayout MakeTunnelLayout() {
  RoadLayout layout;
  layout.name = "tunnel";
  layout.width = 320;
  layout.height = 240;
  layout.background_shade = 40;  // dark tunnel interior
  layout.road_shade = 70;

  // Roadway band across the middle of the image. Vehicles enter from the
  // left off-screen and exit right. Two eastbound lanes.
  layout.road_surface.push_back(BBox(0, 96, 320, 152));
  layout.lanes.push_back(
      Lane(0, {{-40.0, 110.0}, {360.0, 110.0}}, /*speed_limit=*/3.0));
  layout.lanes.push_back(
      Lane(1, {{-40.0, 138.0}, {360.0, 138.0}}, /*speed_limit=*/3.2));

  // Tunnel side walls directly above / below the roadway.
  layout.walls.push_back(BBox(0, 84, 320, 95));
  layout.walls.push_back(BBox(0, 153, 320, 164));
  return layout;
}

RoadLayout MakeIntersectionLayout() {
  RoadLayout layout;
  layout.name = "intersection";
  layout.width = 320;
  layout.height = 240;
  layout.background_shade = 110;  // daylight asphalt surroundings
  layout.road_shade = 72;

  // Horizontal road (eastbound + westbound) and vertical road
  // (southbound + northbound) crossing at the image center.
  layout.road_surface.push_back(BBox(0, 92, 320, 148));   // horizontal
  layout.road_surface.push_back(BBox(132, 0, 188, 240));  // vertical

  // Signal plan: group 0 = east-west green, group 1 = north-south green.
  layout.num_signal_groups = 2;
  layout.signal_phase_frames = 110;

  // Stop lines sit ~14 px before the conflict box edges.
  // Lane 0: eastbound, y = 106.
  Lane east(0, {{-40.0, 106.0}, {360.0, 106.0}}, 2.6);
  east.SetStopLine(0, /*s=*/40.0 + 118.0);  // x = 118 (box starts at 132)
  // Lane 1: westbound, y = 134.
  Lane west(1, {{360.0, 134.0}, {-40.0, 134.0}}, 2.6);
  west.SetStopLine(0, /*s=*/360.0 - 202.0);  // x = 202 (box ends at 188)
  // Lane 2: southbound, x = 146.
  Lane south(2, {{146.0, -40.0}, {146.0, 280.0}}, 2.4);
  south.SetStopLine(1, /*s=*/40.0 + 78.0);  // y = 78 (box starts at 92)
  // Lane 3: northbound, x = 174.
  Lane north(3, {{174.0, 280.0}, {174.0, -40.0}}, 2.4);
  north.SetStopLine(1, /*s=*/280.0 - 162.0);  // y = 162 (box ends at 148)

  // Turning movements: benign direction changes are a fixture of real
  // intersections and an important distractor for direction-change
  // features. Lane 4 turns right from eastbound to southbound; lane 5
  // turns from westbound to northbound.
  Lane east_to_south(4,
                     {{-40.0, 106.0},
                      {124.0, 106.0},
                      {142.0, 111.0},
                      {150.0, 122.0},
                      {153.0, 138.0},
                      {153.0, 280.0}},
                     2.4);
  east_to_south.SetStopLine(0, /*s=*/40.0 + 118.0);
  Lane west_to_north(5,
                     {{360.0, 134.0},
                      {208.0, 134.0},
                      {191.0, 128.0},
                      {181.0, 116.0},
                      {180.0, 102.0},
                      {180.0, -40.0}},
                     2.4);
  west_to_north.SetStopLine(0, /*s=*/360.0 - 202.0);

  layout.lanes = {east, west, south, north, east_to_south, west_to_north};
  return layout;
}

}  // namespace mivid

// Vehicle state and kinematics for the traffic simulator.

#ifndef MIVID_TRAFFICSIM_VEHICLE_H_
#define MIVID_TRAFFICSIM_VEHICLE_H_

#include <cstdint>
#include <string>

#include "geometry/geometry.h"

namespace mivid {

/// Vehicle body classes (paper Sec. 3.1: SUVs, pick-up trucks, cars...).
enum class VehicleType : uint8_t { kCar = 0, kSuv = 1, kPickup = 2, kTruck = 3 };

const char* VehicleTypeName(VehicleType type);

/// Body dimensions in pixels (length along heading, width across).
struct VehicleDims {
  double length;
  double width;
};

VehicleDims DimsFor(VehicleType type);

/// How the vehicle's motion is being driven this frame.
enum class MotionMode : uint8_t {
  kLaneFollow = 0,  ///< normal driving along its lane
  kFree = 1,        ///< incident behavior integrates position directly
  kInactive = 2,    ///< despawned (exited or removed after a crash)
};

/// Full dynamic state of one vehicle.
struct VehicleState {
  int id = -1;
  VehicleType type = VehicleType::kCar;
  uint8_t shade = 200;  ///< rendered body intensity

  MotionMode mode = MotionMode::kLaneFollow;
  int lane_id = -1;
  double s = 0.0;       ///< arclength along lane (lane-follow mode)
  double lateral = 0.0;   ///< in-lane lateral drift, px (driver wander)
  double lateral_v = 0.0; ///< lateral drift velocity, px/frame
  bool incident_controlled = false;  ///< maintained by the world each
                                     ///< frame; an executor owns this
                                     ///< vehicle and others must not bind it
  Point2 position;      ///< body center, pixels
  double heading = 0.0; ///< radians
  double speed = 0.0;   ///< px/frame along heading

  /// Oriented bounding box approximated by the axis-aligned MBR of the
  /// rotated body (this is what the paper's tracker reports).
  BBox Mbr() const;

  bool active() const { return mode != MotionMode::kInactive; }
};

}  // namespace mivid

#endif  // MIVID_TRAFFICSIM_VEHICLE_H_

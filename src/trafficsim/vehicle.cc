#include "trafficsim/vehicle.h"

#include <cmath>

namespace mivid {

const char* VehicleTypeName(VehicleType type) {
  switch (type) {
    case VehicleType::kCar:
      return "car";
    case VehicleType::kSuv:
      return "suv";
    case VehicleType::kPickup:
      return "pickup";
    case VehicleType::kTruck:
      return "truck";
  }
  return "?";
}

VehicleDims DimsFor(VehicleType type) {
  switch (type) {
    case VehicleType::kCar:
      return {16.0, 8.0};
    case VehicleType::kSuv:
      return {18.0, 9.0};
    case VehicleType::kPickup:
      return {20.0, 9.0};
    case VehicleType::kTruck:
      return {28.0, 10.0};
  }
  return {16.0, 8.0};
}

BBox VehicleState::Mbr() const {
  const VehicleDims dims = DimsFor(type);
  const double hl = dims.length / 2, hw = dims.width / 2;
  const double c = std::fabs(std::cos(heading)), s = std::fabs(std::sin(heading));
  const double ex = hl * c + hw * s;
  const double ey = hl * s + hw * c;
  return BBox(position.x - ex, position.y - ey, position.x + ex,
              position.y + ey);
}

}  // namespace mivid

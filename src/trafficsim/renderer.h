// Rasterizes world state into greyscale frames.
//
// The rendered frames feed the segmentation stack end-to-end, so they
// include the static scene (road, walls), per-vehicle bodies at distinct
// shades, and additive sensor noise.

#ifndef MIVID_TRAFFICSIM_RENDERER_H_
#define MIVID_TRAFFICSIM_RENDERER_H_

#include <vector>

#include "common/rng.h"
#include "trafficsim/road.h"
#include "trafficsim/vehicle.h"
#include "video/frame.h"

namespace mivid {

/// Rendering knobs.
struct RenderOptions {
  double noise_stddev = 6.0;  ///< additive Gaussian pixel noise
  uint64_t noise_seed = 7;
  bool draw_noise = true;
  /// Slow sinusoidal global illumination drift (clouds, tunnel lighting):
  /// every pixel is offset by amplitude * sin(2 pi frame / period).
  double illumination_amplitude = 0.0;  ///< intensity units; 0 = off
  int illumination_period = 600;        ///< frames per cycle
};

/// Stateless-per-frame renderer for a fixed layout.
class Renderer {
 public:
  Renderer(const RoadLayout& layout, RenderOptions options = {});

  /// The static scene with no vehicles and no noise (ideal background).
  const Frame& background() const { return background_; }

  /// Renders vehicles over the background, then applies illumination
  /// drift and noise. The frame counter advances per call.
  Frame Render(const std::vector<VehicleState>& vehicles);

 private:
  const RoadLayout& layout_;
  RenderOptions options_;
  Frame background_;
  Rng noise_rng_;
  int frame_index_ = 0;
};

}  // namespace mivid

#endif  // MIVID_TRAFFICSIM_RENDERER_H_

#include "trafficsim/renderer.h"

#include <algorithm>
#include <cmath>

#include "video/draw.h"

namespace mivid {

Renderer::Renderer(const RoadLayout& layout, RenderOptions options)
    : layout_(layout), options_(options), noise_rng_(options.noise_seed) {
  background_ = Frame(layout.width, layout.height, layout.background_shade);
  for (const auto& surface : layout.road_surface) {
    FillRect(&background_, surface, layout.road_shade);
  }
  for (const auto& wall : layout.walls) {
    FillRect(&background_, wall, 150);  // bright tunnel wall cladding
  }
}

Frame Renderer::Render(const std::vector<VehicleState>& vehicles) {
  Frame frame = background_;
  for (const auto& v : vehicles) {
    if (!v.active()) continue;
    const VehicleDims dims = DimsFor(v.type);
    FillRotatedRect(&frame, v.position, dims.length / 2, dims.width / 2,
                    v.heading, v.shade);
  }

  double illumination = 0.0;
  if (options_.illumination_amplitude > 0 &&
      options_.illumination_period > 0) {
    illumination = options_.illumination_amplitude *
                   std::sin(2.0 * M_PI * frame_index_ /
                            options_.illumination_period);
  }
  ++frame_index_;

  const bool noisy = options_.draw_noise && options_.noise_stddev > 0;
  if (noisy || illumination != 0.0) {
    for (auto& p : frame.pixels()) {
      double v = static_cast<double>(p) + illumination;
      if (noisy) v += noise_rng_.Gaussian(0, options_.noise_stddev);
      p = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  return frame;
}

}  // namespace mivid

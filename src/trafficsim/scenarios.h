// Scenario scripts mirroring the paper's two evaluation clips.
//
// Clip 1 (Sec. 6.2): a tunnel, 2504 frames, sparse traffic, accidents that
// "involve a single vehicle ... speeding vehicles lost control and hit on
// the sidewalls". Clip 2: a road intersection (Taiwan), 592 frames, denser
// traffic, accidents that "often involve two or more vehicles".
//
// All schedules are derived deterministically from the seed, so every
// experiment in the repository reproduces exactly.

#ifndef MIVID_TRAFFICSIM_SCENARIOS_H_
#define MIVID_TRAFFICSIM_SCENARIOS_H_

#include "trafficsim/world.h"

namespace mivid {

/// Tuning knobs for the tunnel scenario (paper clip 1).
struct TunnelScenarioOptions {
  int total_frames = 2504;
  double min_spawn_gap = 112.0;  ///< frames between vehicle entries
  double max_spawn_gap = 160.0;
  int num_wall_crashes = 6;
  int num_sudden_stops = 2;
  int num_speeding = 4;   ///< distractor events (not accidents)
  int num_uturns = 4;     ///< distractor events (not accidents)
  uint64_t seed = 2015;
};

/// Builds the tunnel scenario script.
ScenarioSpec MakeTunnelScenario(const TunnelScenarioOptions& options = {});

/// Tuning knobs for the intersection scenario (paper clip 2).
struct IntersectionScenarioOptions {
  int total_frames = 592;
  double min_spawn_gap = 16.0;  ///< across all four approaches
  double max_spawn_gap = 32.0;
  int num_cross_collisions = 3;
  int num_rear_ends = 1;
  int num_uturns = 4;     ///< distractor events
  int num_speeding = 2;   ///< distractor events
  uint64_t seed = 2008;
};

/// Builds the intersection scenario script.
ScenarioSpec MakeIntersectionScenario(
    const IntersectionScenarioOptions& options = {});

}  // namespace mivid

#endif  // MIVID_TRAFFICSIM_SCENARIOS_H_

// A monotonic-clock deadline threaded through every coordinator→worker
// hop so no RPC can block past its budget.
//
// A default-constructed Deadline is infinite (never expires); a finite
// one is anchored to std::chrono::steady_clock so wall-clock jumps
// cannot fire or starve it. The type is a plain value: copy it freely
// across retry loops — every attempt draws down the same budget.

#ifndef MIVID_COMMON_DEADLINE_H_
#define MIVID_COMMON_DEADLINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace mivid {

class Deadline {
 public:
  /// Infinite deadline: never expires, remaining_ms() is huge.
  Deadline() = default;

  /// Deadline `ms` milliseconds from now; ms <= 0 is already expired.
  static Deadline AfterMs(int64_t ms) {
    Deadline d;
    d.finite_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return !finite_; }

  bool expired() const {
    return finite_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds left, clamped to >= 0. A very large value when infinite
  /// (safe to pass to poll-style timeouts after clamping at the call site).
  int64_t remaining_ms() const {
    if (!finite_) return kInfiniteMs;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    at_ - std::chrono::steady_clock::now())
                    .count();
    return std::max<int64_t>(0, left);
  }

  /// The earlier of this deadline and one `ms` from now. With ms <= 0
  /// (meaning "no budget configured") returns *this unchanged.
  Deadline ClampedToMs(int64_t ms) const {
    if (ms <= 0) return *this;
    if (!finite_) return AfterMs(ms);
    Deadline other = AfterMs(ms);
    return other.at_ < at_ ? other : *this;
  }

  static constexpr int64_t kInfiniteMs = int64_t{1} << 40;  // ~35 years

 private:
  std::chrono::steady_clock::time_point at_{};
  bool finite_ = false;
};

}  // namespace mivid

#endif  // MIVID_COMMON_DEADLINE_H_

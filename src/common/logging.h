// Minimal leveled logging for mivid.
//
// Usage:
//   MIVID_LOG(INFO) << "ingested " << n << " frames";
//
// Severity below the global threshold is compiled into a cheap runtime check.
// FATAL logs abort after flushing.

#ifndef MIVID_COMMON_LOGGING_H_
#define MIVID_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mivid {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum severity that is emitted. Default: kWarn
/// (so library code is quiet in tests and benches unless asked).
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below threshold.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define MIVID_LOG(severity)                                              \
  (::mivid::LogLevel::k##severity < ::mivid::GetLogLevel())              \
      ? (void)0                                                          \
      : (void)::mivid::internal::LogMessage(::mivid::LogLevel::k##severity, \
                                            __FILE__, __LINE__)          \
            .stream()

#define MIVID_CHECK(cond)                                                   \
  if (!(cond))                                                              \
  ::mivid::internal::LogMessage(::mivid::LogLevel::kFatal, __FILE__,        \
                                __LINE__)                                   \
          .stream()                                                         \
      << "Check failed: " #cond " "

}  // namespace mivid

#endif  // MIVID_COMMON_LOGGING_H_

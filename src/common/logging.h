// Minimal leveled logging for mivid.
//
// Usage:
//   MIVID_LOG(Info) << "ingested " << n << " frames";
//   MIVID_LOG_EVERY_N(Warn, 1000) << "slow frame";   // 1st, 1001st, ...
//
// Severity below the global threshold is compiled into a cheap runtime
// check. FATAL logs are emitted regardless of the threshold (even at
// kOff) and abort after flushing. Each log line is written to stderr with
// a single write call, so lines from concurrent threads never interleave;
// lines emitted from a thread-pool worker carry its index (`w3`) in the
// prefix.

#ifndef MIVID_COMMON_LOGGING_H_
#define MIVID_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace mivid {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
  kOff = 5,  ///< suppresses everything except FATAL (which must still
             ///< report and abort; silencing it would change semantics)
};

/// Sets the global minimum severity that is emitted. Default: kWarn
/// (so library code is quiet in tests and benches unless asked).
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

/// Tags every subsequent log line (and trace export) with a process
/// identity — the cluster role / worker id, e.g. "w2" or "coord" — so
/// logs from a fleet run under one supervisor stay attributable:
/// [INFO coord file:42]. Call once at startup; empty clears the tag.
void SetLogIdentity(const std::string& identity);

/// The identity set via SetLogIdentity, or "" when none.
const std::string& GetLogIdentity();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below threshold.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// True when `level` should be emitted: at/above the threshold, or FATAL
/// (which is never suppressible).
inline bool ShouldLog(LogLevel level) {
  return level >= GetLogLevel() || level == LogLevel::kFatal;
}

/// Bumps the per-call-site occurrence counter and returns true on the
/// 1st, (n+1)th, (2n+1)th, ... execution. n <= 1 always returns true.
bool EveryNTick(std::atomic<uint64_t>* counter, uint64_t n);

/// Lets the ternary in MIVID_LOG discard the streamed chain: operator&
/// binds looser than operator<<, so the whole `stream << a << b` runs
/// first and the result collapses to void, matching the other branch.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define MIVID_LOG(severity)                                                  \
  (!::mivid::internal::ShouldLog(::mivid::LogLevel::k##severity))            \
      ? (void)0                                                              \
      : ::mivid::internal::Voidify() &                                       \
            ::mivid::internal::LogMessage(::mivid::LogLevel::k##severity,    \
                                          __FILE__, __LINE__)                \
                .stream()

/// Emits on the 1st, (n+1)th, (2n+1)th, ... execution of this call site
/// (the occurrence counter advances even while the severity is
/// suppressed). Safe in hot loops: one relaxed atomic increment when
/// skipping. The immediately-invoked lambda gives each call site its own
/// counter while keeping the macro a single expression.
#define MIVID_LOG_EVERY_N(severity, n)                                       \
  (!::mivid::internal::EveryNTick(                                           \
       []() -> ::std::atomic<::std::uint64_t>* {                             \
         static ::std::atomic<::std::uint64_t> mivid_occurrences{0};         \
         return &mivid_occurrences;                                          \
       }(),                                                                  \
       static_cast<::std::uint64_t>(n)) ||                                   \
   !::mivid::internal::ShouldLog(::mivid::LogLevel::k##severity))            \
      ? (void)0                                                              \
      : ::mivid::internal::Voidify() &                                       \
            ::mivid::internal::LogMessage(::mivid::LogLevel::k##severity,    \
                                          __FILE__, __LINE__)                \
                .stream()

#define MIVID_CHECK(cond)                                                   \
  if (!(cond))                                                              \
  ::mivid::internal::LogMessage(::mivid::LogLevel::kFatal, __FILE__,        \
                                __LINE__)                                   \
          .stream()                                                         \
      << "Check failed: " #cond " "

}  // namespace mivid

#endif  // MIVID_COMMON_LOGGING_H_

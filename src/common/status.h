// Status / Result error-handling primitives for mivid.
//
// Library boundaries do not throw: fallible operations return a Status, or a
// Result<T> when they also produce a value (RocksDB-style). Status is cheap to
// copy in the OK case (no allocation).

#ifndef MIVID_COMMON_STATUS_H_
#define MIVID_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace mivid {

/// Error category for a failed operation.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kOutOfRange = 7,
  kFailedPrecondition = 8,
  kInternal = 9,
  kResourceExhausted = 10,
  kDataLoss = 11,
  kDeadlineExceeded = 12,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// The OK state carries no allocation; error states allocate a small record.
/// Typical use:
///
///   Status s = db.Open(path);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and a descriptive `message`.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// A value of type T or an error Status. Exactly one is present.
///
///   Result<Model> r = Train(data);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables `return status;`).
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> var_;
};

/// Propagates a non-OK status to the caller.
#define MIVID_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::mivid::Status _s = (expr);               \
    if (!_s.ok()) return _s;                   \
  } while (0)

#define MIVID_CONCAT_IMPL_(a, b) a##b
#define MIVID_CONCAT_(a, b) MIVID_CONCAT_IMPL_(a, b)
#define MIVID_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

/// Evaluates a Result<T> expression, assigning the value to `lhs` or
/// returning the error.
#define MIVID_ASSIGN_OR_RETURN(lhs, expr) \
  MIVID_ASSIGN_OR_RETURN_IMPL_(MIVID_CONCAT_(_mivid_result_, __LINE__), lhs, expr)

}  // namespace mivid

#endif  // MIVID_COMMON_STATUS_H_

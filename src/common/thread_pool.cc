#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

namespace mivid {

namespace {

thread_local int tls_worker_index = -1;

/// Thread count requested via SetGlobalThreadCount (0 = default).
std::atomic<int> g_requested_threads{0};

int DefaultThreadCount() {
  if (const char* env = std::getenv("MIVID_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return HardwareThreads();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::InWorkerThread() { return tls_worker_index >= 0; }

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

void ThreadPool::RunBatch(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (InWorkerThread()) {
    // Nested fork-join from a worker: run inline. Waiting on the queue
    // here could deadlock once every worker blocks on sub-tasks.
    for (auto& t : tasks) t();
    return;
  }
  struct BatchState {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t remaining;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining = tasks.size();
  for (auto& t : tasks) {
    Submit([state, task = std::move(t)] {
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      std::unique_lock<std::mutex> lock(state->mu);
      if (error && !state->first_error) state->first_error = error;
      if (--state->remaining == 0) state->done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;   // guarded by g_pool_mu
int g_pool_size = 0;                  // size g_pool was built with

}  // namespace

void SetGlobalThreadCount(int n) {
  g_requested_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(g_pool_mu);
  if (g_pool && g_pool_size != GlobalThreadCount()) {
    g_pool.reset();  // rebuilt lazily at the new size
    g_pool_size = 0;
  }
}

int GlobalThreadCount() {
  const int requested = g_requested_threads.load(std::memory_order_relaxed);
  return requested >= 1 ? requested : DefaultThreadCount();
}

ThreadPool* GlobalPool() {
  const int count = GlobalThreadCount();
  if (count <= 1) return nullptr;
  std::unique_lock<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool_size != count) {
    g_pool.reset();  // join old workers before spawning the new pool
    g_pool = std::make_unique<ThreadPool>(count);
    g_pool_size = count;
  }
  return g_pool.get();
}

size_t ParallelChunkCount(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t chunks = (n + grain - 1) / grain;
  ThreadPool* pool =
      (chunks > 1 && !ThreadPool::InWorkerThread()) ? GlobalPool() : nullptr;
  if (pool == nullptr) {
    // Serial fallback: same chunk boundaries, executed in order.
    for (size_t begin = 0; begin < n; begin += grain) {
      fn(begin, std::min(begin + grain, n));
    }
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (size_t begin = 0; begin < n; begin += grain) {
    const size_t end = std::min(begin + grain, n);
    tasks.push_back([&fn, begin, end] { fn(begin, end); });
  }
  pool->RunBatch(tasks);
}

}  // namespace mivid

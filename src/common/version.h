// Build identity reported by ping/stats so fleet tooling can tell *what*
// is running on each node, not just that it answers.

#ifndef MIVID_COMMON_VERSION_H_
#define MIVID_COMMON_VERSION_H_

namespace mivid {

/// Library version, bumped on protocol- or format-affecting releases.
inline constexpr char kMividVersion[] = "0.8.0";

}  // namespace mivid

#endif  // MIVID_COMMON_VERSION_H_

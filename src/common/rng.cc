#include "common/rng.h"

#include <cmath>

namespace mivid {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(&x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit span
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace mivid

// Terminal plotting used by benchmark harnesses to render the paper's
// figures (accuracy-vs-iteration curves, fitted trajectories) as text.

#ifndef MIVID_COMMON_ASCII_PLOT_H_
#define MIVID_COMMON_ASCII_PLOT_H_

#include <string>
#include <vector>

namespace mivid {

/// A named series of (x, y) points for AsciiLinePlot.
struct PlotSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char glyph = '*';
};

/// Options controlling plot size and axis labels.
struct PlotOptions {
  int width = 72;   ///< interior plot columns
  int height = 20;  ///< interior plot rows
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_from_zero = false;  ///< force the y axis to start at 0
};

/// Renders one or more series into a multi-line ASCII chart.
///
/// Each series is drawn with its glyph; overlapping points show the glyph of
/// the later series. A legend maps glyphs to series names.
std::string AsciiLinePlot(const std::vector<PlotSeries>& series,
                          const PlotOptions& options);

/// Renders a horizontal bar chart: one row per (label, value).
std::string AsciiBarChart(const std::vector<std::pair<std::string, double>>& rows,
                          const std::string& title, int width = 50);

/// Renders a scatter of points (used for the Fig. 2 curve-fitting demo).
std::string AsciiScatter(const std::vector<double>& xs,
                         const std::vector<double>& ys,
                         const std::vector<double>& fit_xs,
                         const std::vector<double>& fit_ys,
                         const PlotOptions& options);

/// Formats a table with aligned columns; `rows[i]` must match header size.
std::string AsciiTable(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows);

}  // namespace mivid

#endif  // MIVID_COMMON_ASCII_PLOT_H_

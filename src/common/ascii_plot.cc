#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace mivid {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void Add(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double Span() const { return hi - lo; }
};

}  // namespace

std::string AsciiLinePlot(const std::vector<PlotSeries>& series,
                          const PlotOptions& options) {
  const int w = std::max(10, options.width);
  const int h = std::max(5, options.height);

  Range xr, yr;
  for (const auto& s : series) {
    for (double x : s.xs) xr.Add(x);
    for (double y : s.ys) yr.Add(y);
  }
  if (!std::isfinite(xr.lo) || !std::isfinite(yr.lo)) {
    return "(empty plot)\n";
  }
  if (options.y_from_zero) yr.Add(0.0);
  if (xr.Span() <= 0) xr.hi = xr.lo + 1;
  if (yr.Span() <= 0) yr.hi = yr.lo + 1;

  std::vector<std::string> grid(static_cast<size_t>(h), std::string(w, ' '));
  auto put = [&](double x, double y, char g) {
    int cx = static_cast<int>(std::lround((x - xr.lo) / xr.Span() * (w - 1)));
    int cy = static_cast<int>(std::lround((y - yr.lo) / yr.Span() * (h - 1)));
    cx = std::clamp(cx, 0, w - 1);
    cy = std::clamp(cy, 0, h - 1);
    grid[static_cast<size_t>(h - 1 - cy)][static_cast<size_t>(cx)] = g;
  };

  for (const auto& s : series) {
    const size_t n = std::min(s.xs.size(), s.ys.size());
    // Connect consecutive points with interpolated glyphs.
    for (size_t i = 0; i + 1 < n; ++i) {
      const int steps = w;
      for (int t = 0; t <= steps; ++t) {
        const double a = static_cast<double>(t) / steps;
        put(s.xs[i] + a * (s.xs[i + 1] - s.xs[i]),
            s.ys[i] + a * (s.ys[i + 1] - s.ys[i]),
            t == 0 || t == steps ? s.glyph : (s.glyph == '*' ? '.' : '-'));
      }
    }
    for (size_t i = 0; i < n; ++i) put(s.xs[i], s.ys[i], s.glyph);
  }

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  const std::string ytop = StrFormat("%8.3g", yr.hi);
  const std::string ybot = StrFormat("%8.3g", yr.lo);
  for (int r = 0; r < h; ++r) {
    if (r == 0) {
      out += ytop;
    } else if (r == h - 1) {
      out += ybot;
    } else {
      out += std::string(8, ' ');
    }
    out += " |" + grid[static_cast<size_t>(r)] + "\n";
  }
  out += std::string(9, ' ') + "+" + std::string(static_cast<size_t>(w), '-') + "\n";
  out += std::string(10, ' ') + StrFormat("%-10.3g", xr.lo) +
         std::string(static_cast<size_t>(std::max(0, w - 20)), ' ') +
         StrFormat("%10.3g", xr.hi) + "\n";
  if (!options.x_label.empty()) {
    out += std::string(10, ' ') + options.x_label + "\n";
  }
  for (const auto& s : series) {
    out += StrFormat("    %c = %s\n", s.glyph, s.name.c_str());
  }
  return out;
}

std::string AsciiBarChart(const std::vector<std::pair<std::string, double>>& rows,
                          const std::string& title, int width) {
  double maxv = 0;
  size_t label_w = 0;
  for (const auto& [label, v] : rows) {
    maxv = std::max(maxv, std::fabs(v));
    label_w = std::max(label_w, label.size());
  }
  std::string out;
  if (!title.empty()) out += title + "\n";
  for (const auto& [label, v] : rows) {
    const int n = maxv > 0 ? static_cast<int>(std::lround(
                                 std::fabs(v) / maxv * width))
                           : 0;
    out += StrFormat("  %-*s | %s %s\n", static_cast<int>(label_w),
                     label.c_str(), std::string(static_cast<size_t>(n), '#').c_str(),
                     DoubleToString(v, 4).c_str());
  }
  return out;
}

std::string AsciiScatter(const std::vector<double>& xs,
                         const std::vector<double>& ys,
                         const std::vector<double>& fit_xs,
                         const std::vector<double>& fit_ys,
                         const PlotOptions& options) {
  std::vector<PlotSeries> series;
  PlotSeries fit{"fitted curve", fit_xs, fit_ys, '.'};
  PlotSeries pts{"centroids", xs, ys, 'o'};
  // Draw the curve first so raw points stay visible on top.
  series.push_back(fit);
  series.push_back(pts);
  return AsciiLinePlot(series, options);
}

std::string AsciiTable(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += StrFormat(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(header) + sep;
  for (const auto& row : rows) out += render_row(row);
  out += sep;
  return out;
}

}  // namespace mivid

// Fixed-size thread pool plus deterministic data-parallel helpers.
//
// Design rules (see docs/performance.md):
//  * Work decomposition is *static*: ParallelFor/ParallelReduce split the
//    index range into chunks whose boundaries depend only on (n, grain),
//    never on the thread count. Scheduling is dynamic (idle workers pull
//    chunks), but because every chunk computes into its own slot and
//    reductions combine per-chunk results in chunk order, results are
//    bit-identical at any thread count, including the serial fallback.
//  * threads == 1 (or nested use from inside a worker) runs inline with no
//    queue, no locks, and no thread handoff.
//  * The global pool size comes from SetGlobalThreadCount() (e.g. a
//    --threads flag) or the MIVID_THREADS environment variable; default is
//    the hardware concurrency.

#ifndef MIVID_COMMON_THREAD_POOL_H_
#define MIVID_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mivid {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue (all submitted tasks run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe to call from worker threads (the task is
  /// queued, not run inline; use RunBatch for fork-join patterns).
  void Submit(std::function<void()> task);

  /// Runs all `tasks` to completion and rethrows the first exception any
  /// of them threw. Called from inside a worker thread it executes the
  /// batch inline (serially) to avoid queue-wait deadlocks.
  void RunBatch(std::vector<std::function<void()>>& tasks);

  /// True when the calling thread is one of this process's pool workers.
  static bool InWorkerThread();

  /// Index of the calling pool worker in [0, num_threads), or -1 when the
  /// caller is not a pool worker (e.g. the main thread). Stable for the
  /// lifetime of the worker; used by logging prefixes and trace exports.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Number of hardware threads (>= 1).
int HardwareThreads();

/// Sets the global pool size. `n <= 0` restores the default
/// (MIVID_THREADS if set, else hardware concurrency). Rebuilds the pool
/// on next use; not safe to call concurrently with running parallel work.
void SetGlobalThreadCount(int n);

/// The thread count parallel helpers will use (>= 1).
int GlobalThreadCount();

/// Lazily constructed process-wide pool sized to GlobalThreadCount().
/// Returns nullptr when the effective thread count is 1.
ThreadPool* GlobalPool();

/// Splits [0, n) into chunks of at most `grain` indices and runs
/// `fn(begin, end)` over every chunk. Chunk boundaries depend only on
/// (n, grain). `fn` must only write to chunk-owned data.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Number of chunks ParallelFor(n, grain, ...) will produce.
size_t ParallelChunkCount(size_t n, size_t grain);

/// Deterministic map-reduce: `map(begin, end)` produces one partial value
/// per chunk; `combine` folds the partials *in chunk order* starting from
/// `init`. Bit-identical at any thread count for a fixed (n, grain).
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t n, size_t grain, T init, const MapFn& map,
                 const CombineFn& combine) {
  if (n == 0) return init;
  if (grain == 0) grain = 1;
  const size_t chunks = (n + grain - 1) / grain;
  std::vector<T> partials;
  partials.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) partials.emplace_back();
  ParallelFor(n, grain, [&](size_t begin, size_t end) {
    partials[begin / grain] = map(begin, end);
  });
  T acc = std::move(init);
  for (size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace mivid

#endif  // MIVID_COMMON_THREAD_POOL_H_

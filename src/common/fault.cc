#include "common/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.h"

namespace mivid {

namespace fault_internal {
std::atomic<bool> g_armed{false};
}  // namespace fault_internal

namespace {

// FNV-1a over the point name seeds each point's own splitmix64 stream,
// so adding or reordering other points in the spec does not shift a
// point's fire sequence.
uint64_t HashName(std::string_view name, uint64_t seed) {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t SplitMixNext(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct FaultPoint {
  double probability = 0.0;
  int64_t param_ms = 0;
  bool has_param = false;
  uint64_t rng_state = 0;
};

struct FaultRegistry {
  std::mutex mu;
  std::map<std::string, FaultPoint, std::less<>> points;
  std::string spec;
};

FaultRegistry& Registry() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

// Parses one "<point>=<prob>[:<param_ms>][@<seed>]" entry; returns false
// (and logs) on malformed input rather than half-arming it.
bool ParseEntry(const std::string& entry,
                std::map<std::string, FaultPoint, std::less<>>* out) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  std::string name = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);

  uint64_t seed = 0;
  const size_t at = rest.find('@');
  if (at != std::string::npos) {
    seed = static_cast<uint64_t>(strtoull(rest.c_str() + at + 1, nullptr, 10));
    rest = rest.substr(0, at);
  }

  FaultPoint point;
  const size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    point.param_ms = strtoll(rest.c_str() + colon + 1, nullptr, 10);
    point.has_param = true;
    rest = rest.substr(0, colon);
  }

  char* end = nullptr;
  point.probability = strtod(rest.c_str(), &end);
  if (end == rest.c_str() || point.probability < 0.0 ||
      point.probability > 1.0) {
    return false;
  }
  point.rng_state = HashName(name, seed);
  (*out)[std::move(name)] = point;
  return true;
}

void ArmSpecLocked(const std::string& spec, FaultRegistry* registry) {
  registry->points.clear();
  registry->spec = spec;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    std::string entry = spec.substr(start, semi - start);
    if (!entry.empty() && !ParseEntry(entry, &registry->points)) {
      MIVID_LOG(Warn) << "ignoring malformed MIVID_FAULTS entry: " << entry;
    }
    start = semi + 1;
  }
  fault_internal::g_armed.store(!registry->points.empty(),
                                std::memory_order_relaxed);
  if (!registry->points.empty()) {
    MIVID_LOG(Info) << "fault injection armed: " << spec;
  }
}

std::once_flag g_env_once;

void ArmFromEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("MIVID_FAULTS");
    if (env == nullptr || env[0] == '\0') return;
    FaultRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    if (registry.spec.empty()) ArmSpecLocked(env, &registry);
  });
}

// Arm from the environment before main() so the very first fault check
// in the process already sees MIVID_FAULTS.
const bool g_armed_at_init = [] {
  ArmFromEnvOnce();
  return true;
}();

}  // namespace

bool FaultInjected(std::string_view point, int64_t* param_ms) {
  FaultRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(point);
  if (it == registry.points.end()) return false;
  FaultPoint& fp = it->second;
  bool hit;
  if (fp.probability >= 1.0) {
    hit = true;
  } else if (fp.probability <= 0.0) {
    hit = false;
  } else {
    const uint64_t draw = SplitMixNext(&fp.rng_state);
    // 53-bit mantissa draw in [0,1).
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    hit = u < fp.probability;
  }
  if (hit && param_ms != nullptr && fp.has_param) *param_ms = fp.param_ms;
  return hit;
}

void SetFaultSpecForTest(const std::string& spec) {
  FaultRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  ArmSpecLocked(spec, &registry);
  if (spec.empty()) {
    fault_internal::g_armed.store(false, std::memory_order_relaxed);
  }
}

std::string ArmedFaultSpec() {
  ArmFromEnvOnce();
  FaultRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.spec;
}

}  // namespace mivid

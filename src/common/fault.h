// Deterministic fault injection for exercising failure paths on demand.
//
// Fault points are named sites compiled into the binary but dormant
// unless armed. Arming happens through the MIVID_FAULTS environment
// variable (read once, at first check) or SetFaultSpecForTest():
//
//   MIVID_FAULTS="worker.rank.hang=1:2000;transport.write.short=0.5@7"
//
// Grammar, per ';'-separated entry:
//
//   <point>=<probability>[:<param_ms>][@<seed>]
//
//   probability  in [0,1]; each check at the point draws from a
//                deterministic per-point RNG stream, so a given
//                (spec, call sequence) always fires the same way.
//   param_ms     optional integer the site may consume (e.g. how long
//                a ".hang" sleeps); sites supply their own default.
//   seed         optional; folded into the point's RNG stream.
//
// Sites may scope a point by worker id ("w1/worker.rank.hang") so a
// multi-worker process — or a fleet sharing one environment — can fault
// a single worker; unscoped names match every worker.
//
// When nothing is armed, MIVID_FAULT costs one relaxed atomic load and
// a predicted-false branch — inside the repo's <2% disabled-overhead
// budget alongside the metrics/tracing macros.

#ifndef MIVID_COMMON_FAULT_H_
#define MIVID_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace mivid {

namespace fault_internal {
extern std::atomic<bool> g_armed;
}  // namespace fault_internal

/// True when any fault spec is armed. The disabled fast path.
inline bool FaultsArmed() {
  return fault_internal::g_armed.load(std::memory_order_relaxed);
}

/// Draws the named point's next deterministic sample and reports whether
/// the fault fires. Unknown points never fire. When the point carries a
/// ":<param_ms>" and `param_ms` is non-null, *param_ms receives it on a
/// hit (left untouched otherwise).
bool FaultInjected(std::string_view point, int64_t* param_ms = nullptr);

/// Replaces the armed spec at runtime ("" disarms). Resets every
/// point's RNG stream, so a test re-arming the same spec replays the
/// same fire sequence.
void SetFaultSpecForTest(const std::string& spec);

/// The spec currently armed (for diagnostics); "" when disarmed.
std::string ArmedFaultSpec();

}  // namespace mivid

/// True when the named fault point fires now; zero-cost when disarmed.
#define MIVID_FAULT(point) \
  (::mivid::FaultsArmed() && ::mivid::FaultInjected(point))

/// As MIVID_FAULT, but also receives the point's ":<param_ms>" into
/// `ms_out` (an int64_t*) when the spec carries one.
#define MIVID_FAULT_MS(point, ms_out) \
  (::mivid::FaultsArmed() && ::mivid::FaultInjected(point, ms_out))

#endif  // MIVID_COMMON_FAULT_H_

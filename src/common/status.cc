#include "common/status.h"

namespace mivid {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace mivid

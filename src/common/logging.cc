#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mivid {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace mivid

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/thread_pool.h"

namespace mivid {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace {
// Set-once-at-startup identity. Stored as a leaked pointer swap so
// concurrent readers never observe a string mid-mutation.
std::atomic<const std::string*> g_identity{nullptr};
}  // namespace

void SetLogIdentity(const std::string& identity) {
  g_identity.store(identity.empty() ? nullptr : new std::string(identity),
                   std::memory_order_release);  // leaked, like the registry
}

const std::string& GetLogIdentity() {
  static const std::string kEmpty;
  const std::string* identity = g_identity.load(std::memory_order_acquire);
  return identity ? *identity : kEmpty;
}

namespace internal {

bool EveryNTick(std::atomic<uint64_t>* counter, uint64_t n) {
  const uint64_t occurrence =
      counter->fetch_add(1, std::memory_order_relaxed);
  return n <= 1 || occurrence % n == 0;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level);
  // Cluster processes tag their lines with the local role/worker id so a
  // fleet run under one supervisor stays attributable: [INFO coord ...].
  const std::string& identity = GetLogIdentity();
  if (!identity.empty()) stream_ << " " << identity;
  // Pool workers tag their lines so interleaved parallel phases are
  // attributable: [WARN w3 file:42].
  const int worker = ThreadPool::CurrentWorkerIndex();
  if (worker >= 0) stream_ << " w" << worker;
  stream_ << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // One write call per line: stdio locks the stream per call, so lines
  // from concurrent threads never interleave mid-line.
  stream_ << "\n";
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace mivid

// Small string helpers shared across the library.

#ifndef MIVID_COMMON_STRING_UTIL_H_
#define MIVID_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mivid {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a double; returns false on malformed input or trailing junk.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Renders `v` with `precision` digits after the decimal point.
std::string DoubleToString(double v, int precision = 6);

}  // namespace mivid

#endif  // MIVID_COMMON_STRING_UTIL_H_

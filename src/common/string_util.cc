#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cstring>

namespace mivid {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf(Trim(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  std::string buf(Trim(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::string DoubleToString(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

}  // namespace mivid

// Deterministic random number generation.
//
// All stochastic components (traffic simulator, noise injection, solver
// shuffles) draw from an explicitly seeded Rng so that every experiment in
// the repository is reproducible bit-for-bit.

#ifndef MIVID_COMMON_RNG_H_
#define MIVID_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mivid {

/// Deterministic PRNG (xoshiro256**) with convenience distributions.
///
/// Not thread-safe; use one instance per thread or component.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mivid

#endif  // MIVID_COMMON_RNG_H_

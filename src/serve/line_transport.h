// LineTransport: the socket layer shared by the mivid_serve daemon and
// the mivid_coord coordinator.
//
// Owns up to two listeners — a Unix-domain stream socket and a TCP
// socket (loopback by default) — and runs the accept/connection loops:
// one accept thread polling both listen fds, one thread per connection
// framing newline-delimited requests. Every complete line is handed to
// the owner's handler, whose return string is written back as one
// response line. The transport is protocol-agnostic; RetrievalServer
// and Coordinator plug their HandleLine into it, so the worker and the
// coordinator share one tested socket path.
//
// Oversized-line defense: a connection that streams more than
// kMaxRequestBytes without a newline gets one error response and is
// closed — a misbehaving (or malicious) client cannot grow the framing
// buffer without bound.

#ifndef MIVID_SERVE_LINE_TRANSPORT_H_
#define MIVID_SERVE_LINE_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace mivid {

struct LineTransportOptions {
  std::string uds_path;               ///< "" = no Unix-domain listener
  std::string tcp_host = "127.0.0.1";  ///< TCP bind address
  int tcp_port = -1;  ///< <0 = no TCP listener; 0 = kernel-assigned port
  int poll_ms = 100;  ///< accept-loop poll period (idle-hook cadence)
};

class LineTransport {
 public:
  /// Returns one response line (no trailing newline) for one request
  /// line. Called from connection threads; must be thread-safe.
  using Handler = std::function<std::string(const std::string&)>;

  /// Runs on the accept thread once per poll tick (idle sweeps).
  using IdleHook = std::function<void()>;

  LineTransport(LineTransportOptions options, Handler handler,
                IdleHook idle_hook = nullptr);
  ~LineTransport();

  LineTransport(const LineTransport&) = delete;
  LineTransport& operator=(const LineTransport&) = delete;

  /// Binds the configured listeners and starts the accept thread.
  /// InvalidArgument when neither listener is configured.
  Status Start();

  /// Closes listeners and every connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// The TCP port actually bound (resolves port 0), or -1 when TCP is
  /// off or Start has not run.
  int tcp_port() const { return bound_tcp_port_; }

  bool started() const { return started_; }

 private:
  Status StartUds();
  Status StartTcp();
  void AcceptLoop();
  void ConnectionLoop(int fd);

  const LineTransportOptions options_;
  const Handler handler_;
  const IdleHook idle_hook_;

  int uds_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  bool started_ = false;

  std::thread accept_thread_;
  std::mutex conn_mu_;  ///< guards conn_fds_ and conn_threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< Stop() ran to completion
};

}  // namespace mivid

#endif  // MIVID_SERVE_LINE_TRANSPORT_H_

// CorpusManager: shared-ownership cache of per-camera retrieval corpora.
//
// Corpus extraction (QueryEngine::BuildCorpus) is by far the most
// expensive part of opening a session — decoding every clip of a camera,
// extracting features and windows, merging bags. The manager loads each
// camera at most once and hands out shared_ptr<const CameraCorpus>, so N
// concurrent sessions over the same camera share one immutable corpus.
//
// Loading is single-flight: when several threads request an uncached
// camera at once, exactly one performs the extraction while the others
// block on a condition variable and then reuse the result. A failed load
// is not cached — the next request retries.

#ifndef MIVID_SERVE_CORPUS_MANAGER_H_
#define MIVID_SERVE_CORPUS_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/query_engine.h"

namespace mivid {

class CorpusManager {
 public:
  /// `db` must outlive the manager. `query` fixes the extraction
  /// parameters for every cached corpus (one cache = one feature space).
  /// A non-empty `snapshot_dir` enables on-disk packed-corpus snapshots
  /// (db/packed_corpus_io.h): cold loads try the snapshot first — the
  /// feature block is then mmap'd zero-copy instead of re-extracted —
  /// and extraction results are written back for the next start.
  CorpusManager(const VideoDb* db, QueryOptions query,
                std::string snapshot_dir = "")
      : db_(db),
        query_(std::move(query)),
        snapshot_dir_(std::move(snapshot_dir)) {}

  CorpusManager(const CorpusManager&) = delete;
  CorpusManager& operator=(const CorpusManager&) = delete;

  /// Returns the corpus for `camera_id`, loading it on first use.
  /// Blocks if another thread is already loading the same camera.
  Result<std::shared_ptr<const CameraCorpus>> Get(const std::string& camera_id);

  /// Drops the cache entry (sessions holding the shared_ptr keep theirs).
  void Invalidate(const std::string& camera_id);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t snapshot_hits = 0;    ///< cold loads served from a snapshot
    uint64_t snapshot_writes = 0;  ///< extraction results snapshotted
    size_t cached = 0;             ///< cameras resident right now
  };
  Stats stats() const;

  /// Camera ids resident in the cache.
  std::vector<std::string> cached_cameras() const;

  const QueryOptions& query() const { return query_; }

 private:
  /// A cache slot. `corpus == nullptr` means a load is in flight; the
  /// slot is erased (not populated) when the load fails.
  struct Slot {
    std::shared_ptr<const CameraCorpus> corpus;
  };

  /// Snapshot path for one camera (empty when snapshots are disabled).
  std::string SnapshotPath(const std::string& camera_id) const;

  const VideoDb* db_;
  const QueryOptions query_;
  const std::string snapshot_dir_;
  mutable std::mutex mu_;
  std::condition_variable loaded_;
  std::map<std::string, Slot> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t snapshot_hits_ = 0;
  uint64_t snapshot_writes_ = 0;
};

}  // namespace mivid

#endif  // MIVID_SERVE_CORPUS_MANAGER_H_

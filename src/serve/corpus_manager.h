// CorpusManager: epoch-snapshot store of per-camera retrieval corpora.
//
// The corpus of a live camera is no longer a load-once immutable blob:
// streaming ingestion (src/ingest/) keeps appending freshly cut clips
// while sessions are ranking. The manager reconciles the two with an
// epoch model (docs/ingest.md):
//
//  * Snapshot(camera) returns the camera's currently *published* epoch
//    — an immutable shared_ptr<const CorpusEpoch>. This is the one way
//    any consumer (serve, cluster, tools, tests) obtains a corpus.
//    Sessions pin the epoch they opened on, so their rankings stay
//    bit-identical no matter what ingest appends concurrently.
//  * Append(camera, clip) stages a cut clip's extraction into the
//    camera's mutable tail. Tail clips are invisible to Snapshot.
//  * Publish(camera) atomically swaps in a new immutable epoch =
//    published + tail, with bag ids continuing where the published
//    corpus ended (existing bag ids — and therefore session feedback
//    labels — never change meaning across epochs). With no staged
//    tail, Publish is an idempotent no-op returning the current epoch.
//
// The first Snapshot of a camera cold-loads epoch 1 with single-flight
// semantics: segments restored from the on-disk epoch manifest
// (db/epoch_manifest.h) when one matches, clips that arrived after the
// last publish re-extracted, full extraction as the fallback. Every
// publish appends a packed segment + rewrites the manifest
// (best-effort), so a restart resumes at the published epoch without
// re-extracting.

#ifndef MIVID_SERVE_CORPUS_MANAGER_H_
#define MIVID_SERVE_CORPUS_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "db/epoch_manifest.h"
#include "db/query_engine.h"

namespace mivid {

/// One immutable published corpus generation.
struct CorpusEpoch {
  std::string camera_id;
  uint64_t id = 0;  ///< monotonic per camera, first publish = 1
  std::shared_ptr<const CameraCorpus> corpus;
  std::chrono::steady_clock::time_point published_at;
};

class CorpusManager {
 public:
  /// `db` must outlive the manager. `query` fixes the extraction
  /// parameters for every corpus (one manager = one feature space).
  /// A non-empty `snapshot_dir` enables on-disk epoch segments +
  /// manifests (cold loads mmap published segments zero-copy instead
  /// of re-extracting).
  CorpusManager(const VideoDb* db, QueryOptions query,
                std::string snapshot_dir = "")
      : db_(db),
        query_(std::move(query)),
        snapshot_dir_(std::move(snapshot_dir)) {}

  CorpusManager(const CorpusManager&) = delete;
  CorpusManager& operator=(const CorpusManager&) = delete;

  /// The camera's published epoch, cold-loading epoch 1 on first use.
  /// Blocks if another thread is already loading the same camera.
  Result<std::shared_ptr<const CorpusEpoch>> Snapshot(
      const std::string& camera_id);

  /// Stages one cut clip into the camera's mutable tail. The clip must
  /// already be persisted in the db (its id is used for dedup against
  /// the published epoch's coverage).
  Status Append(const std::string& camera_id, ClipExtraction clip);

  /// Publishes published + tail as a new immutable epoch and returns
  /// it. Serialized per manager; concurrent Snapshot()s keep returning
  /// the previous epoch until the swap.
  Result<std::shared_ptr<const CorpusEpoch>> Publish(
      const std::string& camera_id);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t snapshot_hits = 0;    ///< cold loads restored from segments
    uint64_t snapshot_writes = 0;  ///< segments written (cold + publish)
    uint64_t publishes = 0;        ///< epochs published (beyond cold load)
    size_t cached = 0;             ///< cameras with a published epoch
    size_t tail_clips = 0;         ///< staged clips awaiting publish
  };
  Stats stats() const;

  /// Camera ids with a published epoch.
  std::vector<std::string> cached_cameras() const;

  const QueryOptions& query() const { return query_; }

 private:
  struct CameraState {
    std::shared_ptr<const CorpusEpoch> published;
    bool loading = false;     ///< cold load in flight
    bool publishing = false;  ///< publish in flight
    std::set<int> included;   ///< clip ids covered by `published`
    std::vector<ClipExtraction> tail;  ///< staged clips, append order
    std::vector<EpochSegment> segments;  ///< on-disk backing (may lag)
  };

  /// Cold load (caller claimed `loading`). Returns the initial epoch
  /// plus the clip/segment bookkeeping to install.
  struct LoadedEpoch {
    std::shared_ptr<const CorpusEpoch> epoch;
    std::set<int> included;
    std::vector<EpochSegment> segments;
  };
  Result<LoadedEpoch> LoadPublished(const std::string& camera_id);

  /// Best-effort segment + manifest write; returns the segment entry
  /// on success.
  Result<EpochSegment> WriteSegment(const CameraCorpus& delta,
                                    const std::vector<int>& clip_ids,
                                    const std::string& camera_id,
                                    size_t segment_index, uint64_t epoch,
                                    std::vector<EpochSegment> manifest_segs);

  std::string FilePrefix(const std::string& camera_id) const;
  std::string ManifestPath(const std::string& camera_id) const;

  const VideoDb* db_;
  const QueryOptions query_;
  const std::string snapshot_dir_;
  mutable std::mutex mu_;
  std::condition_variable changed_;
  std::map<std::string, CameraState> states_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t snapshot_hits_ = 0;
  uint64_t snapshot_writes_ = 0;
  uint64_t publishes_ = 0;
};

}  // namespace mivid

#endif  // MIVID_SERVE_CORPUS_MANAGER_H_

#include "serve/protocol.h"

#include <cmath>
#include <iterator>

#include "common/string_util.h"
#include "obs/json.h"

namespace mivid {

namespace {

Status FieldError(std::string_view field, std::string_view why) {
  return Status::InvalidArgument("request field '" + std::string(field) +
                                 "' " + std::string(why));
}

/// Fetches an optional string member; InvalidArgument if present but not
/// a string.
Result<std::string> GetString(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return std::string();
  if (!v->is_string()) return FieldError(key, "must be a string");
  return v->string;
}

Result<int> GetInt(const JsonValue& obj, std::string_view key, int fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number() || v->number != std::floor(v->number)) {
    return FieldError(key, "must be an integer");
  }
  return static_cast<int>(v->number);
}

Result<bool> GetBool(const JsonValue& obj, std::string_view key,
                     bool fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (v->type != JsonValue::Type::kBool) {
    return FieldError(key, "must be a boolean");
  }
  return v->bool_value;
}

Result<BagLabel> ParseWireLabel(std::string_view name) {
  if (name == "relevant") return BagLabel::kRelevant;
  if (name == "irrelevant") return BagLabel::kIrrelevant;
  if (name == "unlabeled") return BagLabel::kUnlabeled;
  return Status::InvalidArgument(
      "unknown label '" + std::string(name) +
      "' (expected relevant|irrelevant|unlabeled)");
}

struct CmdName {
  const char* name;
  ServeCmd cmd;
  bool needs_session;
};

constexpr CmdName kCommands[] = {
    {"open", ServeCmd::kOpen, true},
    {"rank", ServeCmd::kRank, true},
    {"feedback", ServeCmd::kFeedback, true},
    {"save", ServeCmd::kSave, true},
    {"close", ServeCmd::kClose, true},
    {"stats", ServeCmd::kStats, false},
    {"shutdown", ServeCmd::kShutdown, false},
    {"ping", ServeCmd::kPing, false},
    {"metrics", ServeCmd::kMetrics, false},
    {"cluster_stats", ServeCmd::kClusterStats, false},
    {"trace_dump", ServeCmd::kTraceDump, false},
    {"ingest", ServeCmd::kIngest, false},
    {"refresh", ServeCmd::kRefresh, true},
    {"publish", ServeCmd::kPublish, false},
};

// Parallel to ServeCmd values: wire names and the span names used when
// tracing the execution of each command (literals — span names must
// outlive the trace).
constexpr const char* kWireNames[] = {
    "open", "rank", "feedback", "save", "close", "stats",
    "shutdown", "ping", "metrics", "cluster_stats", "trace_dump",
    "ingest", "refresh", "publish",
};
constexpr const char* kSpanNames[] = {
    "serve/open", "serve/rank", "serve/feedback", "serve/save",
    "serve/close", "serve/stats", "serve/shutdown", "serve/ping",
    "serve/metrics", "serve/cluster_stats", "serve/trace_dump",
    "serve/ingest", "serve/refresh", "serve/publish",
};

/// Validates the optional "v" protocol version field: an integer major
/// or a "major[.minor]" string. Majors must match (different major =
/// incompatible wire format); minors are additive and ignored. Absent
/// "v" means v1, the original protocol.
Status CheckProtocolVersion(const JsonValue& doc) {
  const JsonValue* ver = doc.Find("v");
  if (ver == nullptr) return Status::OK();
  constexpr const char* kShape =
      "must be an integer or \"major[.minor]\" string";
  int major = 0;
  if (ver->is_number()) {
    if (ver->number != std::floor(ver->number)) {
      return FieldError("v", kShape);
    }
    major = static_cast<int>(ver->number);
  } else if (ver->is_string()) {
    const std::string& s = ver->string;
    const size_t dot = s.find('.');
    const std::string_view head =
        std::string_view(s).substr(0, dot == std::string::npos ? s.size()
                                                               : dot);
    if (head.empty() || head.size() > 9) return FieldError("v", kShape);
    for (char c : head) {
      if (c < '0' || c > '9') return FieldError("v", kShape);
      major = major * 10 + (c - '0');
    }
  } else {
    return FieldError("v", kShape);
  }
  if (major != kProtocolMajor) {
    return Status::InvalidArgument(
        "unsupported protocol major version " + std::to_string(major) +
        ": this server speaks " + std::string(kProtocolVersion) +
        " (see docs/serving.md)");
  }
  return Status::OK();
}

/// Fetches a required finite number member.
Result<double> GetNum(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return FieldError(key, "is required");
  if (!v->is_number() || !std::isfinite(v->number)) {
    return FieldError(key, "must be a finite number");
  }
  return v->number;
}

/// Parses the `ingest` payload: "frames", "incidents", "cut",
/// "publish".
Status ParseIngestFields(const JsonValue& doc, ServeRequest* req) {
  if (const JsonValue* frames = doc.Find("frames"); frames != nullptr) {
    if (!frames->is_array()) return FieldError("frames", "must be an array");
    req->frames.reserve(frames->array.size());
    for (const JsonValue& entry : frames->array) {
      if (!entry.is_object()) {
        return FieldError("frames", "entries must be objects");
      }
      MIVID_ASSIGN_OR_RETURN(int frame, GetInt(entry, "frame", -1));
      if (frame < 0) return FieldError("frames[].frame", "is required");
      FrameObservations fo;
      fo.frame = frame;
      if (const JsonValue* obs = entry.Find("obs"); obs != nullptr) {
        if (!obs->is_array()) {
          return FieldError("frames[].obs", "must be an array");
        }
        fo.observations.reserve(obs->array.size());
        for (const JsonValue& o : obs->array) {
          if (!o.is_object()) {
            return FieldError("frames[].obs", "entries must be objects");
          }
          TrackObservation track;
          MIVID_ASSIGN_OR_RETURN(track.track_id, GetInt(o, "track", -1));
          if (track.track_id < 0) {
            return FieldError("frames[].obs[].track", "is required");
          }
          MIVID_ASSIGN_OR_RETURN(track.centroid.x, GetNum(o, "x"));
          MIVID_ASSIGN_OR_RETURN(track.centroid.y, GetNum(o, "y"));
          // Optional bbox [x0,y0,x1,y1]; defaults to the centroid point.
          if (const JsonValue* box = o.Find("bbox"); box != nullptr) {
            if (!box->is_array() || box->array.size() != 4) {
              return FieldError("frames[].obs[].bbox",
                                "must be an array of 4 numbers");
            }
            double edge[4];
            for (size_t i = 0; i < 4; ++i) {
              const JsonValue& e = box->array[i];
              if (!e.is_number() || !std::isfinite(e.number)) {
                return FieldError("frames[].obs[].bbox",
                                  "must be an array of 4 numbers");
              }
              edge[i] = e.number;
            }
            track.bbox = BBox(edge[0], edge[1], edge[2], edge[3]);
          } else {
            track.bbox = BBox(track.centroid.x, track.centroid.y,
                              track.centroid.x, track.centroid.y);
          }
          fo.observations.push_back(track);
        }
      }
      req->frames.push_back(std::move(fo));
    }
  }

  if (const JsonValue* incidents = doc.Find("incidents");
      incidents != nullptr) {
    if (!incidents->is_array()) {
      return FieldError("incidents", "must be an array");
    }
    req->incidents.reserve(incidents->array.size());
    for (const JsonValue& entry : incidents->array) {
      if (!entry.is_object()) {
        return FieldError("incidents", "entries must be objects");
      }
      MIVID_ASSIGN_OR_RETURN(std::string type_name,
                             GetString(entry, "type"));
      if (type_name.empty()) {
        return FieldError("incidents[].type", "is required");
      }
      IncidentRecord incident;
      MIVID_ASSIGN_OR_RETURN(incident.type, IncidentTypeFromName(type_name));
      MIVID_ASSIGN_OR_RETURN(incident.begin_frame,
                             GetInt(entry, "begin", -1));
      MIVID_ASSIGN_OR_RETURN(incident.end_frame, GetInt(entry, "end", -1));
      if (incident.begin_frame < 0 ||
          incident.end_frame < incident.begin_frame) {
        return FieldError("incidents[].begin/end",
                          "must satisfy 0 <= begin <= end");
      }
      if (const JsonValue* vehicles = entry.Find("vehicles");
          vehicles != nullptr) {
        if (!vehicles->is_array()) {
          return FieldError("incidents[].vehicles", "must be an array");
        }
        for (const JsonValue& v : vehicles->array) {
          if (!v.is_number() || v.number != std::floor(v.number)) {
            return FieldError("incidents[].vehicles",
                              "entries must be integers");
          }
          incident.vehicle_ids.push_back(static_cast<int>(v.number));
        }
      }
      req->incidents.push_back(std::move(incident));
    }
  }

  MIVID_ASSIGN_OR_RETURN(req->cut, GetBool(doc, "cut", false));
  MIVID_ASSIGN_OR_RETURN(req->publish, GetBool(doc, "publish", false));
  return Status::OK();
}

}  // namespace

bool ValidSessionId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<ServeRequest> ParseServeRequest(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    return Status::InvalidArgument(
        "request line exceeds " + std::to_string(kMaxRequestBytes) +
        " bytes (" + std::to_string(line.size()) + ")");
  }
  MIVID_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  MIVID_RETURN_IF_ERROR(CheckProtocolVersion(doc));
  MIVID_ASSIGN_OR_RETURN(std::string cmd_name, GetString(doc, "cmd"));
  if (cmd_name.empty()) return FieldError("cmd", "is required");

  ServeRequest req;
  const CmdName* found = nullptr;
  for (const CmdName& c : kCommands) {
    if (cmd_name == c.name) {
      found = &c;
      break;
    }
  }
  if (found == nullptr) {
    return Status::InvalidArgument("unknown command '" + cmd_name + "'");
  }
  req.cmd = found->cmd;

  MIVID_ASSIGN_OR_RETURN(req.session_id, GetString(doc, "session"));
  if (found->needs_session) {
    if (req.session_id.empty()) return FieldError("session", "is required");
    if (!ValidSessionId(req.session_id)) {
      return FieldError("session",
                        "must be 1..64 chars of [A-Za-z0-9._-]");
    }
  }
  MIVID_ASSIGN_OR_RETURN(req.camera_id, GetString(doc, "camera"));
  MIVID_ASSIGN_OR_RETURN(req.engine, GetString(doc, "engine"));
  MIVID_ASSIGN_OR_RETURN(req.top, GetInt(doc, "top", 0));
  MIVID_ASSIGN_OR_RETURN(req.discard, GetBool(doc, "discard", false));
  MIVID_ASSIGN_OR_RETURN(req.trace_id, GetString(doc, "trace"));
  MIVID_ASSIGN_OR_RETURN(req.parent_span, GetString(doc, "span"));
  MIVID_ASSIGN_OR_RETURN(int deadline_ms, GetInt(doc, "deadline_ms", 0));
  if (deadline_ms < 0) return FieldError("deadline_ms", "must be >= 0");
  req.deadline_ms = deadline_ms;

  if (const JsonValue* cameras = doc.Find("cameras"); cameras != nullptr) {
    if (!cameras->is_array()) return FieldError("cameras", "must be an array");
    req.cameras.reserve(cameras->array.size());
    for (const JsonValue& entry : cameras->array) {
      if (!entry.is_string() || entry.string.empty()) {
        return FieldError("cameras", "entries must be non-empty strings");
      }
      req.cameras.push_back(entry.string);
    }
  }

  if (req.cmd == ServeCmd::kFeedback) {
    const JsonValue* labels = doc.Find("labels");
    if (labels == nullptr || !labels->is_array()) {
      return FieldError("labels", "must be an array");
    }
    if (labels->array.empty()) return FieldError("labels", "must be non-empty");
    req.labels.reserve(labels->array.size());
    for (const JsonValue& entry : labels->array) {
      if (!entry.is_object()) {
        return FieldError("labels", "entries must be objects");
      }
      MIVID_ASSIGN_OR_RETURN(int bag, GetInt(entry, "bag", -1));
      if (bag < 0) return FieldError("labels[].bag", "is required");
      MIVID_ASSIGN_OR_RETURN(std::string name, GetString(entry, "label"));
      if (name.empty()) return FieldError("labels[].label", "is required");
      MIVID_ASSIGN_OR_RETURN(BagLabel label, ParseWireLabel(name));
      MIVID_ASSIGN_OR_RETURN(std::string camera, GetString(entry, "camera"));
      req.labels.emplace_back(bag, label);
      req.label_cameras.push_back(std::move(camera));
    }
  }

  if (req.cmd == ServeCmd::kIngest || req.cmd == ServeCmd::kPublish) {
    if (req.camera_id.empty()) return FieldError("camera", "is required");
  }
  if (req.cmd == ServeCmd::kIngest) {
    MIVID_RETURN_IF_ERROR(ParseIngestFields(doc, &req));
  }
  return req;
}

const char* ServeCmdWireName(ServeCmd cmd) {
  const size_t index = static_cast<size_t>(cmd);
  return index < std::size(kWireNames) ? kWireNames[index] : "?";
}

const char* ServeCmdSpanName(ServeCmd cmd) {
  const size_t index = static_cast<size_t>(cmd);
  return index < std::size(kSpanNames) ? kSpanNames[index] : "serve/other";
}

namespace {

// Inserts `members` (already-serialized "key":value pairs) before the
// closing brace of a one-line JSON object; `line` unchanged when it is
// not an object line.
std::string StampTopLevel(const std::string& line,
                          const std::string& members) {
  const size_t close = line.find_last_of('}');
  if (close == std::string::npos) return line;
  std::string stamped = line.substr(0, close);
  // Empty object ("{}") needs no separating comma.
  const size_t open = stamped.find_first_of('{');
  const bool empty_object =
      open != std::string::npos &&
      stamped.find_first_not_of(" \t", open + 1) == std::string::npos;
  if (!empty_object) stamped += ',';
  stamped += members;
  stamped += line.substr(close);
  return stamped;
}

}  // namespace

std::string StampTraceContext(const std::string& line,
                              const std::string& trace_id,
                              const std::string& span_id) {
  return StampTopLevel(line, "\"trace\":\"" + JsonEscape(trace_id) +
                                 "\",\"span\":\"" + JsonEscape(span_id) +
                                 "\"");
}

std::string StampDeadlineMs(const std::string& line, int64_t ms) {
  return StampTopLevel(line, "\"deadline_ms\":" + std::to_string(ms));
}

const char* BagLabelWireName(BagLabel label) {
  switch (label) {
    case BagLabel::kRelevant:
      return "relevant";
    case BagLabel::kIrrelevant:
      return "irrelevant";
    case BagLabel::kUnlabeled:
      return "unlabeled";
  }
  return "unlabeled";
}

const char* StatusCodeWireName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kNotSupported:
      return "NOT_SUPPORTED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "INTERNAL";
}

std::string ResponseStatusCode(const std::string& response) {
  if (response.compare(0, 11, "{\"ok\":true,") == 0 ||
      response.compare(0, 11, "{\"ok\":true}") == 0) {
    return "OK";
  }
  const size_t pos = response.find("\"code\":\"");
  if (pos == std::string::npos) return "OK";
  const size_t start = pos + 8;
  const size_t end = response.find('"', start);
  return end == std::string::npos ? "?" : response.substr(start, end - start);
}

std::string ErrorResponse(const Status& status) {
  JsonLineBuilder out;
  out.Bool("ok", false)
      .Str("code", StatusCodeWireName(status.code()))
      .Str("error", status.message());
  return std::move(out).Build();
}

void JsonLineBuilder::Key(std::string_view key) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
}

JsonLineBuilder& JsonLineBuilder::Str(std::string_view key,
                                      std::string_view value) {
  Key(key);
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonLineBuilder& JsonLineBuilder::Int(std::string_view key, int64_t value) {
  Key(key);
  out_ += std::to_string(value);
  return *this;
}

JsonLineBuilder& JsonLineBuilder::Num(std::string_view key, double value) {
  Key(key);
  // %.17g round-trips IEEE doubles exactly, so client-side scores compare
  // bit-identical to in-process rankings.
  out_ += StrFormat("%.17g", value);
  return *this;
}

JsonLineBuilder& JsonLineBuilder::Bool(std::string_view key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonLineBuilder& JsonLineBuilder::Raw(std::string_view key,
                                      std::string_view json) {
  Key(key);
  out_ += json;
  return *this;
}

std::string JsonLineBuilder::Build() && {
  out_ += '}';
  return std::move(out_);
}

}  // namespace mivid

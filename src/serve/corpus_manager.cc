#include "serve/corpus_manager.h"

#include "common/fault.h"
#include "common/logging.h"
#include "db/packed_corpus_io.h"
#include "obs/access_log.h"
#include "obs/metrics.h"

namespace mivid {

std::string CorpusManager::SnapshotPath(const std::string& camera_id) const {
  if (snapshot_dir_.empty()) return "";
  // Camera ids are file-name material only after sanitizing separators.
  std::string name = camera_id;
  for (char& c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_';
    if (!safe) c = '_';
  }
  return snapshot_dir_ + "/" + name + ".mivpack";
}

Result<std::shared_ptr<const CameraCorpus>> CorpusManager::Get(
    const std::string& camera_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = cache_.find(camera_id);
    if (it == cache_.end()) break;  // nobody loading: this thread loads
    if (it->second.corpus != nullptr) {
      ++hits_;
      MIVID_METRIC_COUNT("serve/corpus_cache_hits", 1);
      return it->second.corpus;
    }
    // Another thread is extracting this camera; wait for it to finish
    // (or fail — the slot disappears and the loop retries as loader).
    loaded_.wait(lock);
  }

  cache_.emplace(camera_id, Slot{});  // claim the load
  ++misses_;
  MIVID_METRIC_COUNT("serve/corpus_cache_misses", 1);
  lock.unlock();

  // The whole cold path counts as corpus-load time in the request audit;
  // snapshot_hit distinguishes an mmap restore from a full extraction.
  AuditPhaseTimer corpus_phase(&RequestAudit::corpus_ms);

  const std::string snapshot_path = SnapshotPath(camera_id);
  std::shared_ptr<const CameraCorpus> corpus;
  // snapshot.load.fail pretends the mmap restore went bad (torn file,
  // version skew) so the full-extraction fallback path stays exercised.
  if (!snapshot_path.empty() && !MIVID_FAULT("snapshot.load.fail")) {
    // Cold path, stage 1: serve the mmap'd snapshot when one matches.
    Result<std::shared_ptr<const CameraCorpus>> restored =
        ReadPackedCorpusFile(snapshot_path, query_);
    if (restored.ok() && restored.value()->camera_id == camera_id) {
      corpus = std::move(restored).value();
      MIVID_METRIC_COUNT("serve/corpus_snapshot_hits", 1);
      lock.lock();
      ++snapshot_hits_;
      lock.unlock();
      if (RequestAudit* audit = CurrentRequestAudit()) {
        audit->snapshot_hit = true;
      }
    }
  }

  if (corpus == nullptr) {
    Result<CameraCorpus> built = [&]() -> Result<CameraCorpus> {
      MIVID_SCOPED_TIMER("serve/corpus_load_seconds");
      QueryEngine engine(db_);
      return engine.BuildCorpus(camera_id, query_);
    }();
    if (!built.ok()) {
      lock.lock();
      cache_.erase(camera_id);
      loaded_.notify_all();
      return built.status();
    }
    if (!snapshot_path.empty()) {
      // Best effort: a failed snapshot write only costs the next start.
      Status wrote =
          WritePackedCorpusFile(built.value(), snapshot_path, query_);
      if (wrote.ok()) {
        MIVID_METRIC_COUNT("serve/corpus_snapshot_writes", 1);
        lock.lock();
        ++snapshot_writes_;
        lock.unlock();
      } else {
        MIVID_LOG(Warn) << "corpus snapshot write failed: "
                           << wrote.ToString();
      }
    }
    corpus = std::make_shared<const CameraCorpus>(std::move(built).value());
  }

  lock.lock();
  cache_[camera_id].corpus = corpus;
  MIVID_METRIC_GAUGE_SET("serve/corpus_cached", cache_.size());
  loaded_.notify_all();
  return corpus;
}

void CorpusManager::Invalidate(const std::string& camera_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(camera_id);
  // Never erase an in-flight slot: the loader expects to find it.
  if (it != cache_.end() && it->second.corpus != nullptr) {
    cache_.erase(it);
    MIVID_METRIC_GAUGE_SET("serve/corpus_cached", cache_.size());
  }
}

CorpusManager::Stats CorpusManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.snapshot_hits = snapshot_hits_;
  s.snapshot_writes = snapshot_writes_;
  s.cached = cache_.size();
  return s;
}

std::vector<std::string> CorpusManager::cached_cameras() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(cache_.size());
  for (const auto& [camera, slot] : cache_) {
    if (slot.corpus != nullptr) out.push_back(camera);
  }
  return out;
}

}  // namespace mivid

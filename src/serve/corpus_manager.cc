#include "serve/corpus_manager.h"

#include "obs/metrics.h"

namespace mivid {

Result<std::shared_ptr<const CameraCorpus>> CorpusManager::Get(
    const std::string& camera_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = cache_.find(camera_id);
    if (it == cache_.end()) break;  // nobody loading: this thread loads
    if (it->second.corpus != nullptr) {
      ++hits_;
      MIVID_METRIC_COUNT("serve/corpus_cache_hits", 1);
      return it->second.corpus;
    }
    // Another thread is extracting this camera; wait for it to finish
    // (or fail — the slot disappears and the loop retries as loader).
    loaded_.wait(lock);
  }

  cache_.emplace(camera_id, Slot{});  // claim the load
  ++misses_;
  MIVID_METRIC_COUNT("serve/corpus_cache_misses", 1);
  lock.unlock();

  Result<CameraCorpus> built = [&]() -> Result<CameraCorpus> {
    MIVID_SCOPED_TIMER("serve/corpus_load_seconds");
    QueryEngine engine(db_);
    return engine.BuildCorpus(camera_id, query_);
  }();

  lock.lock();
  if (!built.ok()) {
    cache_.erase(camera_id);
    loaded_.notify_all();
    return built.status();
  }
  auto corpus =
      std::make_shared<const CameraCorpus>(std::move(built).value());
  cache_[camera_id].corpus = corpus;
  MIVID_METRIC_GAUGE_SET("serve/corpus_cached", cache_.size());
  loaded_.notify_all();
  return corpus;
}

void CorpusManager::Invalidate(const std::string& camera_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(camera_id);
  // Never erase an in-flight slot: the loader expects to find it.
  if (it != cache_.end() && it->second.corpus != nullptr) {
    cache_.erase(it);
    MIVID_METRIC_GAUGE_SET("serve/corpus_cached", cache_.size());
  }
}

CorpusManager::Stats CorpusManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.cached = cache_.size();
  return s;
}

std::vector<std::string> CorpusManager::cached_cameras() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(cache_.size());
  for (const auto& [camera, slot] : cache_) {
    if (slot.corpus != nullptr) out.push_back(camera);
  }
  return out;
}

}  // namespace mivid

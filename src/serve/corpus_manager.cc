#include "serve/corpus_manager.h"

#include <algorithm>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "db/packed_corpus_io.h"
#include "obs/access_log.h"
#include "obs/metrics.h"

namespace mivid {

namespace {

/// Appends every bag of `from` into `to` (ids kept as stored — segment
/// bag ids are already global).
void AppendCorpusBags(const CameraCorpus& from, CameraCorpus* to) {
  for (const MilBag& bag : from.dataset.bags()) to->dataset.AddBag(bag);
  to->bag_refs.insert(from.bag_refs.begin(), from.bag_refs.end());
  to->truth.insert(from.truth.begin(), from.truth.end());
}

double SecondsSince(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

}  // namespace

namespace {

/// Camera ids are file-name material only after sanitizing separators.
std::string SanitizedName(const std::string& camera_id) {
  std::string name = camera_id;
  for (char& c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_';
    if (!safe) c = '_';
  }
  return name;
}

}  // namespace

std::string CorpusManager::FilePrefix(const std::string& camera_id) const {
  return snapshot_dir_ + "/" + SanitizedName(camera_id);
}

std::string CorpusManager::ManifestPath(const std::string& camera_id) const {
  return snapshot_dir_.empty() ? "" : FilePrefix(camera_id) + ".manifest.json";
}

Result<std::shared_ptr<const CorpusEpoch>> CorpusManager::Snapshot(
    const std::string& camera_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    CameraState& state = states_[camera_id];
    if (state.published != nullptr) {
      ++hits_;
      MIVID_METRIC_COUNT("serve/corpus_cache_hits", 1);
      MIVID_METRIC_GAUGE_SET("serve/epoch_age_seconds",
                             SecondsSince(state.published->published_at));
      return state.published;
    }
    if (!state.loading) break;  // this thread loads
    // Another thread is loading this camera; wait for it to finish (or
    // fail — loading clears and the loop retries as loader).
    changed_.wait(lock);
  }

  states_[camera_id].loading = true;
  ++misses_;
  MIVID_METRIC_COUNT("serve/corpus_cache_misses", 1);
  lock.unlock();

  Result<LoadedEpoch> loaded = LoadPublished(camera_id);

  lock.lock();
  CameraState& state = states_[camera_id];
  state.loading = false;
  if (!loaded.ok()) {
    changed_.notify_all();
    return loaded.status();
  }
  state.published = loaded.value().epoch;
  state.included = std::move(loaded.value().included);
  state.segments = std::move(loaded.value().segments);
  // Clips staged before the cold load may already be covered by it
  // (the db scan sees everything IngestClip persisted).
  auto& tail = state.tail;
  tail.erase(std::remove_if(tail.begin(), tail.end(),
                            [&](const ClipExtraction& clip) {
                              return state.included.count(clip.clip_id) != 0;
                            }),
             tail.end());
  size_t cached = 0;
  for (const auto& [cam, st] : states_) cached += st.published ? 1 : 0;
  MIVID_METRIC_GAUGE_SET("serve/corpus_cached", cached);
  changed_.notify_all();
  return state.published;
}

Result<CorpusManager::LoadedEpoch> CorpusManager::LoadPublished(
    const std::string& camera_id) {
  // The whole cold path counts as corpus-load time in the request audit;
  // snapshot_hit distinguishes a segment restore from a full extraction.
  AuditPhaseTimer corpus_phase(&RequestAudit::corpus_ms);

  const std::vector<int> clip_ids = db_->ClipsForCamera(camera_id);
  if (clip_ids.empty()) {
    return Status::NotFound("no clips for camera '" + camera_id + "'");
  }

  LoadedEpoch out;
  uint64_t epoch_id = 1;
  std::shared_ptr<const CameraCorpus> corpus;

  // Stage 1: restore published segments via the epoch manifest.
  // snapshot.load.fail pretends the restore went bad (torn file,
  // version skew) so the full-extraction fallback stays exercised.
  const std::string manifest_path = ManifestPath(camera_id);
  if (!manifest_path.empty() && !MIVID_FAULT("snapshot.load.fail")) {
    Result<EpochManifest> manifest = ReadEpochManifest(manifest_path);
    if (manifest.ok() && manifest.value().camera_id == camera_id) {
      // The manifest must cover a prefix of the camera's clips (in
      // order) — anything else (deleted clips, reordering) falls back
      // to full extraction.
      const std::vector<int> covered = manifest.value().AllClips();
      const bool prefix =
          covered.size() <= clip_ids.size() &&
          std::equal(covered.begin(), covered.end(), clip_ids.begin());
      if (prefix) {
        std::vector<std::shared_ptr<const CameraCorpus>> parts;
        bool good = true;
        for (const EpochSegment& seg : manifest.value().segments) {
          Result<std::shared_ptr<const CameraCorpus>> part =
              ReadPackedCorpusFile(snapshot_dir_ + "/" + seg.file, query_);
          if (!part.ok() || part.value()->camera_id != camera_id) {
            good = false;
            break;
          }
          parts.push_back(std::move(part).value());
        }
        if (good && !parts.empty()) {
          if (parts.size() == 1) {
            corpus = parts[0];  // common case: zero-copy mmap adoption
          } else {
            auto merged = std::make_shared<CameraCorpus>();
            merged->camera_id = camera_id;
            for (const auto& part : parts) {
              AppendCorpusBags(*part, merged.get());
            }
            corpus = merged;
          }
          epoch_id = manifest.value().epoch;
          out.segments = manifest.value().segments;
          out.included.insert(covered.begin(), covered.end());
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++snapshot_hits_;
          }
          MIVID_METRIC_COUNT("serve/corpus_snapshot_hits", 1);
          if (RequestAudit* audit = CurrentRequestAudit()) {
            audit->snapshot_hit = true;
          }
        }
      }
    }
  }

  // Stage 2: extract whatever the segments do not cover.
  std::vector<int> missing;
  for (int clip : clip_ids) {
    if (out.included.count(clip) == 0) missing.push_back(clip);
  }
  if (!missing.empty()) {
    MIVID_SCOPED_TIMER("serve/corpus_load_seconds");
    QueryEngine engine(db_);
    auto built = std::make_shared<CameraCorpus>();
    built->camera_id = camera_id;
    int next_bag_id = 0;
    if (corpus != nullptr) {
      AppendCorpusBags(*corpus, built.get());
      next_bag_id = NextBagId(*built);
      ++epoch_id;  // restored epoch + fresh clips = a new generation
    }
    CameraCorpus delta;
    delta.camera_id = camera_id;
    int delta_next = next_bag_id;
    MIVID_RETURN_IF_ERROR(
        engine.AppendClips(missing, query_, &delta, &delta_next));
    AppendCorpusBags(delta, built.get());
    corpus = built;
    out.included.insert(missing.begin(), missing.end());

    if (!snapshot_dir_.empty()) {
      // Best effort: a failed segment write only costs the next start.
      Result<EpochSegment> seg =
          WriteSegment(delta, missing, camera_id, out.segments.size(),
                       epoch_id, out.segments);
      if (seg.ok()) out.segments.push_back(std::move(seg).value());
    }
  }

  auto epoch = std::make_shared<CorpusEpoch>();
  epoch->camera_id = camera_id;
  epoch->id = epoch_id;
  epoch->corpus = std::move(corpus);
  epoch->published_at = std::chrono::steady_clock::now();
  out.epoch = std::move(epoch);
  return out;
}

Result<EpochSegment> CorpusManager::WriteSegment(
    const CameraCorpus& delta, const std::vector<int>& clip_ids,
    const std::string& camera_id, size_t segment_index, uint64_t epoch,
    std::vector<EpochSegment> manifest_segs) {
  const std::string file = StrFormat(
      "%s.seg%zu.mivpack", SanitizedName(camera_id).c_str(), segment_index);
  Status wrote =
      WritePackedCorpusFile(delta, snapshot_dir_ + "/" + file, query_);
  if (!wrote.ok()) {
    MIVID_LOG(Warn) << "corpus segment write failed: " << wrote.ToString();
    return wrote;
  }
  EpochSegment seg;
  seg.file = file;
  seg.clip_ids = clip_ids;
  seg.bag_count = static_cast<int>(delta.dataset.bags().size());

  EpochManifest manifest;
  manifest.camera_id = camera_id;
  manifest.epoch = epoch;
  manifest.segments = std::move(manifest_segs);
  manifest.segments.push_back(seg);
  Status manifest_status =
      WriteEpochManifest(manifest, ManifestPath(camera_id));
  if (!manifest_status.ok()) {
    MIVID_LOG(Warn) << "epoch manifest write failed: "
                    << manifest_status.ToString();
    return manifest_status;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++snapshot_writes_;
  }
  MIVID_METRIC_COUNT("serve/corpus_snapshot_writes", 1);
  return seg;
}

Status CorpusManager::Append(const std::string& camera_id,
                             ClipExtraction clip) {
  if (clip.clip_id < 0) {
    return Status::InvalidArgument("Append requires a persisted clip id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  CameraState& state = states_[camera_id];
  if (state.included.count(clip.clip_id) != 0) {
    return Status::AlreadyExists("clip " + std::to_string(clip.clip_id) +
                                 " already published");
  }
  for (const ClipExtraction& staged : state.tail) {
    if (staged.clip_id == clip.clip_id) {
      return Status::AlreadyExists("clip " + std::to_string(clip.clip_id) +
                                   " already staged");
    }
  }
  state.tail.push_back(std::move(clip));
  return Status::OK();
}

Result<std::shared_ptr<const CorpusEpoch>> CorpusManager::Publish(
    const std::string& camera_id) {
  // Ensure the base epoch exists (cold load on first publish).
  MIVID_ASSIGN_OR_RETURN(std::shared_ptr<const CorpusEpoch> base,
                         Snapshot(camera_id));

  MIVID_SCOPED_TIMER("serve/epoch_publish_seconds");
  std::unique_lock<std::mutex> lock(mu_);
  CameraState* state = &states_[camera_id];
  while (state->publishing) {
    changed_.wait(lock);
    state = &states_[camera_id];
  }
  base = state->published;  // a racing publisher may have moved it
  // A clip cut before the camera's first Snapshot is extracted by the
  // cold load itself (it was already in the db); drop such staged
  // duplicates instead of publishing their bags twice.
  state->tail.erase(
      std::remove_if(state->tail.begin(), state->tail.end(),
                     [&](const ClipExtraction& clip) {
                       return state->included.count(clip.clip_id) != 0;
                     }),
      state->tail.end());
  if (state->tail.empty()) return base;
  state->publishing = true;
  // Take the staged clips; appends racing with this publish go into
  // the (now empty) tail and ride the next one.
  std::vector<ClipExtraction> staged = std::move(state->tail);
  state->tail.clear();
  std::vector<EpochSegment> segments = state->segments;
  lock.unlock();

  // Materialize the delta bags, ids continuing after the base corpus.
  CameraCorpus delta;
  delta.camera_id = camera_id;
  int next_bag_id = NextBagId(*base->corpus);
  std::vector<int> delta_clips;
  for (const ClipExtraction& clip : staged) {
    delta_clips.push_back(clip.clip_id);
    AppendClipBags(clip, query_, &delta, &next_bag_id);
  }

  auto merged = std::make_shared<CameraCorpus>();
  merged->camera_id = camera_id;
  AppendCorpusBags(*base->corpus, merged.get());
  AppendCorpusBags(delta, merged.get());

  auto epoch = std::make_shared<CorpusEpoch>();
  epoch->camera_id = camera_id;
  epoch->id = base->id + 1;
  epoch->corpus = merged;
  epoch->published_at = std::chrono::steady_clock::now();

  if (!snapshot_dir_.empty()) {
    Result<EpochSegment> seg = WriteSegment(
        delta, delta_clips, camera_id, segments.size(), epoch->id, segments);
    if (seg.ok()) segments.push_back(std::move(seg).value());
  }

  lock.lock();
  CameraState& st = states_[camera_id];
  st.published = epoch;
  st.segments = std::move(segments);
  for (int clip : delta_clips) st.included.insert(clip);
  st.publishing = false;
  ++publishes_;
  lock.unlock();
  changed_.notify_all();
  MIVID_METRIC_COUNT("serve/epoch_publishes", 1);
  MIVID_METRIC_GAUGE_SET("serve/epoch_age_seconds", 0.0);
  return std::shared_ptr<const CorpusEpoch>(epoch);
}

CorpusManager::Stats CorpusManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.snapshot_hits = snapshot_hits_;
  s.snapshot_writes = snapshot_writes_;
  s.publishes = publishes_;
  for (const auto& [camera, state] : states_) {
    if (state.published != nullptr) ++s.cached;
    s.tail_clips += state.tail.size();
  }
  return s;
}

std::vector<std::string> CorpusManager::cached_cameras() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(states_.size());
  for (const auto& [camera, state] : states_) {
    if (state.published != nullptr) out.push_back(camera);
  }
  return out;
}

}  // namespace mivid

#include "serve/line_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "serve/protocol.h"

namespace mivid {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, restarting on EINTR (worker supervision
/// delivers SIGCHLD to this process); false when the peer went away.
bool SendAll(int fd, const std::string& data) {
  // transport.write.short forces one byte per send() so the loop's
  // short-write handling is exercised end to end.
  const bool dribble = MIVID_FAULT("transport.write.short");
  size_t sent = 0;
  while (sent < data.size()) {
    const size_t chunk = dribble ? 1 : data.size() - sent;
    const ssize_t w = ::send(fd, data.data() + sent, chunk, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

LineTransport::LineTransport(LineTransportOptions options, Handler handler,
                             IdleHook idle_hook)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      idle_hook_(std::move(idle_hook)) {}

LineTransport::~LineTransport() { Stop(); }

Status LineTransport::StartUds() {
  sockaddr_un addr{};
  if (options_.uds_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.uds_path);
  }
  uds_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (uds_fd_ < 0) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.uds_path.c_str(),
              options_.uds_path.size() + 1);
  ::unlink(options_.uds_path.c_str());  // stale socket from a crash
  if (::bind(uds_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind " + options_.uds_path);
    ::close(uds_fd_);
    uds_fd_ = -1;
    return s;
  }
  if (::listen(uds_fd_, 64) < 0) {
    Status s = Errno("listen " + options_.uds_path);
    ::close(uds_fd_);
    uds_fd_ = -1;
    return s;
  }
  return Status::OK();
}

Status LineTransport::StartTcp() {
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (tcp_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
  if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
    return Status::InvalidArgument("bad TCP bind address: " +
                                   options_.tcp_host);
  }
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind " + options_.tcp_host + ":" +
                     std::to_string(options_.tcp_port));
    ::close(tcp_fd_);
    tcp_fd_ = -1;
    return s;
  }
  if (::listen(tcp_fd_, 64) < 0) {
    Status s = Errno("listen tcp");
    ::close(tcp_fd_);
    tcp_fd_ = -1;
    return s;
  }
  // Resolve the kernel-assigned port so --tcp-port=0 callers can learn
  // where to connect.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_tcp_port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

Status LineTransport::Start() {
  if (started_) return Status::FailedPrecondition("transport already started");
  if (options_.uds_path.empty() && options_.tcp_port < 0) {
    return Status::InvalidArgument(
        "no listener configured (need a socket path or a TCP port)");
  }
  if (options_.tcp_port > 65535) {
    return Status::InvalidArgument("TCP port out of range: " +
                                   std::to_string(options_.tcp_port));
  }
  if (!options_.uds_path.empty()) MIVID_RETURN_IF_ERROR(StartUds());
  if (options_.tcp_port >= 0) {
    Status tcp = StartTcp();
    if (!tcp.ok()) {
      if (uds_fd_ >= 0) {
        ::close(uds_fd_);
        uds_fd_ = -1;
        ::unlink(options_.uds_path.c_str());
      }
      return tcp;
    }
  }
  started_ = true;
  accept_thread_ = std::thread(&LineTransport::AcceptLoop, this);
  return Status::OK();
}

void LineTransport::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfds[2];
    int nfds = 0;
    if (uds_fd_ >= 0) pfds[nfds++] = {uds_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) pfds[nfds++] = {tcp_fd_, POLLIN, 0};
    const int ready = ::poll(pfds, static_cast<nfds_t>(nfds),
                             options_.poll_ms);
    if (idle_hook_) idle_hook_();
    if (ready <= 0) continue;
    for (int i = 0; i < nfds; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(pfds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back(&LineTransport::ConnectionLoop, this, fd);
    }
  }
}

void LineTransport::ConnectionLoop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    // transport.read.short shrinks each recv() to one byte so request
    // reassembly across arbitrarily fragmented reads stays exercised.
    const size_t want = MIVID_FAULT("transport.read.short") ? 1 : sizeof(chunk);
    const ssize_t n = ::recv(fd, chunk, want, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (Trim(line).empty()) continue;
      std::string response = handler_(line);
      response += '\n';
      if (!SendAll(fd, response)) open = false;
    }
    if (open && buffer.size() > kMaxRequestBytes) {
      // A line this long can never parse; answer once and hang up
      // rather than buffering an unbounded stream.
      SendAll(fd, ErrorResponse(Status::InvalidArgument(
                      "request line exceeds " +
                      std::to_string(kMaxRequestBytes) + " bytes")) +
                      "\n");
      open = false;
    }
  }
  // Deregister before closing so Stop() never shuts down a recycled fd.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

void LineTransport::Stop() {
  if (stopped_ || !started_) {
    stopped_ = true;
    return;
  }
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // The accept thread is joined, so conn_threads_ is stable now.
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  if (uds_fd_ >= 0) {
    ::close(uds_fd_);
    uds_fd_ = -1;
    ::unlink(options_.uds_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  stopped_ = true;
}

}  // namespace mivid

// ServeClient: blocking Unix-domain-socket client for mivid_serve.
//
// Speaks the newline-delimited JSON protocol (serve/protocol.h): Call()
// writes one request line and blocks for the matching response line.
// Shared by the mivid_client tool, the CLI's remote mode, and the serve
// tests, so they all exercise the same wire path.

#ifndef MIVID_SERVE_CLIENT_H_
#define MIVID_SERVE_CLIENT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/json.h"

namespace mivid {

class ServeClient {
 public:
  /// Connects to the daemon's socket.
  static Result<ServeClient> Connect(const std::string& socket_path);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Sends one request line (newline appended) and returns the response
  /// line (newline stripped). IOError when the daemon hangs up.
  Result<std::string> Call(std::string_view request_line);

  /// Call() + JSON parse of the response.
  Result<JsonValue> CallJson(std::string_view request_line);

  bool connected() const { return fd_ >= 0; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last returned response line
};

}  // namespace mivid

#endif  // MIVID_SERVE_CLIENT_H_

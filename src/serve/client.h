// ServeClient: blocking client for mivid_serve and mivid_coord.
//
// Speaks the newline-delimited JSON protocol (serve/protocol.h) over a
// Unix-domain or TCP stream socket: Call() writes one request line and
// blocks for the matching response line. Shared by the mivid_client
// tool, the cluster coordinator's worker connections, and the serve
// tests, so they all exercise the same wire path.

#ifndef MIVID_SERVE_CLIENT_H_
#define MIVID_SERVE_CLIENT_H_

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "common/deadline.h"
#include "common/status.h"
#include "obs/json.h"

namespace mivid {

/// Capped exponential backoff with jitter, used to retry
/// RESOURCE_EXHAUSTED (backpressure) responses instead of surfacing them
/// as hard errors.
struct RetryPolicy {
  int max_retries = 0;      ///< 0 = no retries (fail on first rejection)
  int base_delay_ms = 50;   ///< delay before the first retry
  int max_delay_ms = 2000;  ///< cap on the exponential growth
  uint64_t jitter_seed = 0;  ///< 0 = seed from std::random_device
};

/// Delay before retry number `attempt` (0-based): min(base * 2^attempt,
/// max) plus uniform jitter in [0, delay/2], so synchronized clients
/// spread out instead of hammering the daemon in lockstep.
int BackoffDelayMs(const RetryPolicy& policy, int attempt, std::mt19937* rng);

/// True when `err` — the errno of a failed connect() — indicates the
/// server is momentarily absent (e.g. a supervised worker mid-restart:
/// ECONNREFUSED, ETIMEDOUT, a not-yet-recreated socket path) rather
/// than a configuration error worth failing fast on.
bool TransientConnectErrno(int err);

class ServeClient {
 public:
  /// Connects to a daemon endpoint: "host:port" or "tcp:host:port" for
  /// TCP (port all digits, host without '/'), anything else is a
  /// Unix-domain socket path.
  static Result<ServeClient> Connect(const std::string& endpoint);

  /// True when `endpoint` parses as a TCP address rather than a path.
  static bool IsTcpEndpoint(std::string_view endpoint);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Sends one request line (newline appended) and returns the response
  /// line (newline stripped). IOError when the daemon hangs up. With a
  /// finite `deadline`, send and receive are poll-bounded; on expiry the
  /// connection is closed (the stream is desynced — a late response
  /// would pair with the wrong request) and DeadlineExceeded returned.
  Result<std::string> Call(std::string_view request_line,
                           const Deadline& deadline = Deadline());

  /// Call() + JSON parse of the response.
  Result<JsonValue> CallJson(std::string_view request_line);

  /// Like Call(), but retries with BackoffDelayMs sleeps, up to
  /// policy.max_retries times, on (a) {"code":"RESOURCE_EXHAUSTED"}
  /// backpressure responses and (b) transport failures whose reconnect
  /// fails with a transient errno (TransientConnectErrno) — the shape of
  /// a supervised worker mid-restart. The last rejection is returned
  /// verbatim when retries run out; non-transient connect errors fail
  /// immediately.
  Result<std::string> CallWithRetry(std::string_view request_line,
                                    const RetryPolicy& policy);

  /// Re-dials the endpoint this client was connected to, dropping any
  /// buffered bytes from the old connection.
  Status Reconnect();

  /// Closes the connection (Reconnect can restore it).
  void Disconnect();

  bool connected() const { return fd_ >= 0; }
  const std::string& endpoint() const { return endpoint_; }

  /// errno of the last failed Reconnect() dial (0 when none).
  int last_connect_errno() const { return last_connect_errno_; }

 private:
  ServeClient(int fd, std::string endpoint)
      : fd_(fd), endpoint_(std::move(endpoint)) {}

  int fd_ = -1;
  std::string endpoint_;
  int last_connect_errno_ = 0;
  std::string buffer_;  ///< bytes past the last returned response line
};

}  // namespace mivid

#endif  // MIVID_SERVE_CLIENT_H_

#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mivid {

Result<ServeClient> ServeClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + socket_path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError("connect " + socket_path + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> ServeClient::Call(std::string_view request_line) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string out(request_line);
  out += '\n';
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t w =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) {
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("daemon closed the connection");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonValue> ServeClient::CallJson(std::string_view request_line) {
  MIVID_ASSIGN_OR_RETURN(std::string line, Call(request_line));
  return ParseJson(line);
}

}  // namespace mivid

#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace mivid {

namespace {

/// Splits "host:port" / "tcp:host:port"; false when it isn't one.
bool ParseTcpEndpoint(std::string_view endpoint, std::string* host,
                      int* port) {
  if (StartsWith(endpoint, "tcp:")) endpoint.remove_prefix(4);
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return false;
  }
  const std::string_view host_part = endpoint.substr(0, colon);
  const std::string_view port_part = endpoint.substr(colon + 1);
  if (host_part.find('/') != std::string_view::npos) return false;
  int64_t value = 0;
  if (!ParseInt64(std::string(port_part), &value) || value < 1 ||
      value > 65535) {
    return false;
  }
  *host = std::string(host_part);
  *port = static_cast<int>(value);
  return true;
}

Result<int> ConnectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad TCP host (need a numeric address): " +
                                   host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> ConnectUds(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + socket_path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError("connect " + socket_path + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

}  // namespace

bool ServeClient::IsTcpEndpoint(std::string_view endpoint) {
  std::string host;
  int port = 0;
  return ParseTcpEndpoint(endpoint, &host, &port);
}

Result<ServeClient> ServeClient::Connect(const std::string& endpoint) {
  std::string host;
  int port = 0;
  Result<int> fd = ParseTcpEndpoint(endpoint, &host, &port)
                       ? ConnectTcp(host, port)
                       : ConnectUds(endpoint);
  if (!fd.ok()) return fd.status();
  return ServeClient(fd.value());
}

int BackoffDelayMs(const RetryPolicy& policy, int attempt, std::mt19937* rng) {
  const int base = std::max(1, policy.base_delay_ms);
  const int cap = std::max(base, policy.max_delay_ms);
  int64_t delay = base;
  for (int i = 0; i < attempt && delay < cap; ++i) delay *= 2;
  delay = std::min<int64_t>(delay, cap);
  if (rng != nullptr && delay > 1) {
    std::uniform_int_distribution<int64_t> jitter(0, delay / 2);
    delay += jitter(*rng);
  }
  return static_cast<int>(delay);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> ServeClient::Call(std::string_view request_line) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string out(request_line);
  out += '\n';
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t w =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) {
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("daemon closed the connection");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonValue> ServeClient::CallJson(std::string_view request_line) {
  MIVID_ASSIGN_OR_RETURN(std::string line, Call(request_line));
  return ParseJson(line);
}

Result<std::string> ServeClient::CallWithRetry(std::string_view request_line,
                                               const RetryPolicy& policy) {
  std::mt19937 rng(policy.jitter_seed != 0
                       ? static_cast<std::mt19937::result_type>(
                             policy.jitter_seed)
                       : std::random_device{}());
  for (int attempt = 0;; ++attempt) {
    MIVID_ASSIGN_OR_RETURN(std::string response, Call(request_line));
    if (attempt >= policy.max_retries) return response;
    Result<JsonValue> doc = ParseJson(response);
    if (!doc.ok()) return response;
    const JsonValue* code = doc.value().Find("code");
    if (code == nullptr || !code->is_string() ||
        code->string != "RESOURCE_EXHAUSTED") {
      return response;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(BackoffDelayMs(policy, attempt, &rng)));
  }
}

}  // namespace mivid

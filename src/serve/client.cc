#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/string_util.h"

namespace mivid {

namespace {

/// Splits "host:port" / "tcp:host:port"; false when it isn't one.
bool ParseTcpEndpoint(std::string_view endpoint, std::string* host,
                      int* port) {
  if (StartsWith(endpoint, "tcp:")) endpoint.remove_prefix(4);
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return false;
  }
  const std::string_view host_part = endpoint.substr(0, colon);
  const std::string_view port_part = endpoint.substr(colon + 1);
  if (host_part.find('/') != std::string_view::npos) return false;
  int64_t value = 0;
  if (!ParseInt64(std::string(port_part), &value) || value < 1 ||
      value > 65535) {
    return false;
  }
  *host = std::string(host_part);
  *port = static_cast<int>(value);
  return true;
}

Result<int> ConnectTcp(const std::string& host, int port, int* out_errno) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (out_errno != nullptr) *out_errno = errno;
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad TCP host (need a numeric address): " +
                                   host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (out_errno != nullptr) *out_errno = errno;
    Status s = Status::IOError("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> ConnectUds(const std::string& socket_path, int* out_errno) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + socket_path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (out_errno != nullptr) *out_errno = errno;
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (out_errno != nullptr) *out_errno = errno;
    Status s = Status::IOError("connect " + socket_path + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> Dial(const std::string& endpoint, int* out_errno) {
  std::string host;
  int port = 0;
  return ParseTcpEndpoint(endpoint, &host, &port)
             ? ConnectTcp(host, port, out_errno)
             : ConnectUds(endpoint, out_errno);
}

/// Blocks until `fd` is ready for `events` or the deadline passes.
/// DeadlineExceeded on expiry; OK when ready (or on poll-reported error
/// conditions — the following send/recv surfaces the real errno).
Status WaitFdUntil(int fd, short events, const Deadline& deadline) {
  for (;;) {
    const int64_t remaining = deadline.remaining_ms();
    if (remaining <= 0) {
      return Status::DeadlineExceeded("rpc deadline exceeded");
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int timeout =
        static_cast<int>(std::min<int64_t>(remaining, 60 * 1000));
    const int ready = ::poll(&p, 1, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) continue;  // timed slice over; re-check the deadline
    return Status::OK();
  }
}

}  // namespace

bool ServeClient::IsTcpEndpoint(std::string_view endpoint) {
  std::string host;
  int port = 0;
  return ParseTcpEndpoint(endpoint, &host, &port);
}

Result<ServeClient> ServeClient::Connect(const std::string& endpoint) {
  Result<int> fd = Dial(endpoint, nullptr);
  if (!fd.ok()) return fd.status();
  return ServeClient(fd.value(), endpoint);
}

bool TransientConnectErrno(int err) {
  switch (err) {
    case ECONNREFUSED:  // nothing listening yet (restart in progress)
    case ECONNRESET:
    case ECONNABORTED:
    case ETIMEDOUT:
    case EAGAIN:
    case EINTR:
    case ENOENT:  // UDS path not re-created yet
      return true;
    default:
      return false;
  }
}

Status ServeClient::Reconnect() {
  if (endpoint_.empty()) {
    return Status::FailedPrecondition("client has no endpoint to re-dial");
  }
  Disconnect();
  last_connect_errno_ = 0;
  Result<int> fd = Dial(endpoint_, &last_connect_errno_);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  return Status::OK();
}

void ServeClient::Disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

int BackoffDelayMs(const RetryPolicy& policy, int attempt, std::mt19937* rng) {
  const int base = std::max(1, policy.base_delay_ms);
  const int cap = std::max(base, policy.max_delay_ms);
  int64_t delay = base;
  for (int i = 0; i < attempt && delay < cap; ++i) delay *= 2;
  delay = std::min<int64_t>(delay, cap);
  if (rng != nullptr && delay > 1) {
    std::uniform_int_distribution<int64_t> jitter(0, delay / 2);
    delay += jitter(*rng);
  }
  return static_cast<int>(delay);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)),
      last_connect_errno_(other.last_connect_errno_),
      buffer_(std::move(other.buffer_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
    last_connect_errno_ = other.last_connect_errno_;
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> ServeClient::Call(std::string_view request_line,
                                      const Deadline& deadline) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string out(request_line);
  out += '\n';
  // transport.write.short trickles the request out one byte per send()
  // to exercise every short-write loop downstream.
  const bool dribble = MIVID_FAULT("transport.write.short");
  size_t sent = 0;
  while (sent < out.size()) {
    if (!deadline.infinite()) {
      Status ready = WaitFdUntil(fd_, POLLOUT, deadline);
      if (!ready.ok()) {
        if (ready.IsDeadlineExceeded()) Disconnect();
        return ready;
      }
    }
    const size_t chunk = dribble ? 1 : out.size() - sent;
    const ssize_t w = ::send(fd_, out.data() + sent, chunk, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    if (w == 0) return Status::IOError("send: connection closed");
    sent += static_cast<size_t>(w);
  }
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (!deadline.infinite()) {
      Status ready = WaitFdUntil(fd_, POLLIN, deadline);
      if (!ready.ok()) {
        // The response for this request is still owed on the stream; a
        // later Call would pair it with the wrong request. Hang up.
        if (ready.IsDeadlineExceeded()) Disconnect();
        return ready;
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("daemon closed the connection");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonValue> ServeClient::CallJson(std::string_view request_line) {
  MIVID_ASSIGN_OR_RETURN(std::string line, Call(request_line));
  return ParseJson(line);
}

Result<std::string> ServeClient::CallWithRetry(std::string_view request_line,
                                               const RetryPolicy& policy) {
  std::mt19937 rng(policy.jitter_seed != 0
                       ? static_cast<std::mt19937::result_type>(
                             policy.jitter_seed)
                       : std::random_device{}());
  for (int attempt = 0;; ++attempt) {
    if (!connected()) {
      Status redial = Reconnect();
      if (!redial.ok()) {
        if (attempt >= policy.max_retries ||
            !TransientConnectErrno(last_connect_errno_)) {
          return redial;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(BackoffDelayMs(policy, attempt, &rng)));
        continue;
      }
    }
    Result<std::string> call = Call(request_line);
    if (!call.ok()) {
      // A broken stream retries through a fresh dial; anything else
      // (deadline expiry, protocol misuse) is not transient.
      if (attempt >= policy.max_retries || !call.status().IsIOError()) {
        return call.status();
      }
      Disconnect();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffDelayMs(policy, attempt, &rng)));
      continue;
    }
    std::string response = std::move(call).value();
    if (attempt >= policy.max_retries) return response;
    Result<JsonValue> doc = ParseJson(response);
    if (!doc.ok()) return response;
    const JsonValue* code = doc.value().Find("code");
    if (code == nullptr || !code->is_string() ||
        code->string != "RESOURCE_EXHAUSTED") {
      return response;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(BackoffDelayMs(policy, attempt, &rng)));
  }
}

}  // namespace mivid

// RetrievalServer: the mivid_serve daemon core, and the worker role of
// a mivid_coord cluster.
//
// A long-lived process hosting many concurrent interactive retrieval
// sessions over one database. Clients speak newline-delimited JSON over
// a Unix-domain stream socket and/or a TCP socket (see
// serve/line_transport.h and serve/protocol.h); every request dispatches
// through the RetrievalEngine interface, so each session can run any
// registered learner. With a `worker_id` and a TCP port set, the same
// process serves as one worker of a coordinator/worker fleet
// (src/cluster/): the coordinator routes sessions here by consistent-hash
// placement of their cameras and probes liveness with `ping`.
//
// Concurrency model:
//  * One accept thread; one thread per connection reading lines
//    (LineTransport).
//  * Request execution runs on the process-wide ThreadPool (inline when
//    the pool is disabled, i.e. MIVID_THREADS=1). Admission is bounded:
//    when `max_pending` requests are already in flight the server answers
//    RESOURCE_EXHAUSTED immediately instead of queueing without bound —
//    explicit backpressure the client can see and retry on.
//  * Per-session mutexes serialize commands against one session; requests
//    on different sessions run in parallel over shared immutable corpora.
//
// HandleLine() is the transport-independent core (parse -> admit ->
// execute -> format); tests drive it in-process without a socket.

#ifndef MIVID_SERVE_SERVER_H_
#define MIVID_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ingest/camera_ingestor.h"
#include "obs/access_log.h"
#include "serve/corpus_manager.h"
#include "serve/line_transport.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"

namespace mivid {

/// Daemon configuration.
struct ServeOptions {
  std::string socket_path;  ///< Unix-domain socket; "" = no UDS listener
  int tcp_port = -1;        ///< TCP listener; <0 = off, 0 = kernel-assigned
  std::string tcp_host = "127.0.0.1";  ///< TCP bind address
  std::string worker_id;    ///< fleet identity reported by ping/stats
  std::string default_engine = "milrf";
  size_t max_pending = 64;   ///< in-flight request bound; 0 = unbounded
  size_t max_sessions = 64;  ///< live session bound; 0 = unbounded
  int64_t idle_timeout_ms = 0;  ///< journal+evict idle sessions; 0 = never
  size_t top_n = 20;            ///< results per round
  QueryOptions query;           ///< corpus extraction parameters
  std::string corpus_snapshot_dir;  ///< packed-corpus snapshot cache (see
                                    ///< CorpusManager); "" disables it

  /// Streaming ingestion (the `ingest` command): auto-cut clip length in
  /// stream frames (<= 0 = clips end only on an explicit "cut") and the
  /// track-retirement gap (see IngestOptions in ingest/stream_types.h).
  int ingest_clip_frames = 0;
  int ingest_retire_frames = 25;

  /// Per-request JSON-lines access log (obs/access_log.h); "" = off.
  std::string access_log_path;
  /// Slow-query log: requests >= the slow threshold; "" = off.
  std::string slow_log_path;
  /// Slow threshold in ms; negative = MIVID_SLOW_QUERY_MS env (or 500).
  double slow_threshold_ms = -1.0;

  /// Test-only: runs after a request is admitted (slot held) and before
  /// it executes. Blocking here holds the slot, which lets tests fill the
  /// admission window deterministically.
  std::function<void(const ServeRequest&)> admission_hook;
};

/// Startup validation of one option bundle: every listener/limit/path
/// combination that can only fail mid-request later is rejected here with
/// a clear message instead. `will_listen` additionally requires at least
/// one configured listener (in-process HandleLine tests pass false).
/// Probes `corpus_snapshot_dir` for writability (creating it if absent).
Status ValidateServeOptions(const ServeOptions& options,
                            bool will_listen = true);

class RetrievalServer {
 public:
  /// `db` must outlive the server.
  RetrievalServer(VideoDb* db, ServeOptions options);
  ~RetrievalServer();

  RetrievalServer(const RetrievalServer&) = delete;
  RetrievalServer& operator=(const RetrievalServer&) = delete;

  /// Handles one request line and returns one response line (no trailing
  /// newline). Thread-safe; this is the full server path minus the
  /// socket, shared by connection threads and in-process tests.
  std::string HandleLine(const std::string& line);

  /// Validates the options, binds the configured listeners (UDS and/or
  /// TCP), and starts accepting connections.
  Status Start();

  /// The bound TCP port after Start() (resolves --tcp-port=0), or -1.
  int tcp_port() const;

  /// Blocks until a shutdown command arrives or Stop() is called.
  void WaitForShutdown();

  /// Like WaitForShutdown, but returns after `timeout_ms` at the latest.
  /// True when shutdown was requested — lets a main loop interleave its
  /// own checks (e.g. a signal flag) with the wait.
  bool WaitForShutdownFor(int timeout_ms);

  /// Graceful stop: closes the listener and every connection, joins all
  /// threads, journals every live session. Idempotent.
  void Stop();

  SessionManager& sessions() { return sessions_; }
  CorpusManager& corpora() { return corpora_; }
  const ServeOptions& options() const { return options_; }
  uint64_t requests_served() const { return served_.load(); }
  uint64_t requests_rejected() const { return rejected_.load(); }

 private:
  std::string Dispatch(const ServeRequest& req, RequestAudit* audit,
                       std::chrono::steady_clock::time_point arrival);
  std::string Execute(const ServeRequest& req);
  std::string CmdOpen(const ServeRequest& req);
  std::string CmdRank(const ServeRequest& req);
  std::string CmdFeedback(const ServeRequest& req);
  std::string CmdSave(const ServeRequest& req);
  std::string CmdClose(const ServeRequest& req);
  std::string CmdStats(const ServeRequest& req);
  std::string CmdShutdown(const ServeRequest& req);
  std::string CmdPing(const ServeRequest& req);
  std::string CmdMetrics(const ServeRequest& req);
  std::string CmdClusterStats(const ServeRequest& req);
  std::string CmdTraceDump(const ServeRequest& req);
  std::string CmdIngest(const ServeRequest& req);
  std::string CmdRefresh(const ServeRequest& req);
  std::string CmdPublish(const ServeRequest& req);

  /// The camera's live ingestor, created on first use.
  std::shared_ptr<CameraIngestor> IngestorFor(const std::string& camera_id);

  void RequestShutdown();
  int64_t UptimeSeconds() const;

  VideoDb* db_;
  const ServeOptions options_;
  CorpusManager corpora_;
  SessionManager sessions_;
  std::unique_ptr<LineTransport> transport_;
  AccessLog access_log_;
  std::mutex ingest_mu_;  ///< guards ingestors_ (not the ingestors)
  std::map<std::string, std::shared_ptr<CameraIngestor>> ingestors_;
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();

  std::atomic<int> in_flight_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< Stop() ran to completion (main thread only)

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace mivid

#endif  // MIVID_SERVE_SERVER_H_

#include "serve/server.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>

#include "common/fault.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/version.h"
#include "linalg/simd.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_wire.h"
#include "obs/trace.h"
#include "retrieval/engine_registry.h"

namespace mivid {

namespace {

/// Milliseconds between poll() wakeups in the accept loop; bounds both
/// shutdown latency and the idle-eviction sweep interval.
constexpr int kAcceptPollMs = 100;

/// Releases one admission slot on scope exit.
struct AdmissionSlot {
  std::atomic<int>* in_flight;
  ~AdmissionSlot() {
    const int depth =
        in_flight->fetch_sub(1, std::memory_order_acq_rel) - 1;
    MIVID_METRIC_GAUGE_SET("serve/queue_depth", depth);
  }
};

/// Checks a worker fault point both scoped to this worker's id
/// ("w1/worker.rank.hang") and unscoped — the scoped form lets a test
/// or a fleet sharing one MIVID_FAULTS environment fault exactly one
/// worker. Only called behind FaultsArmed().
bool WorkerFaultFires(const std::string& worker_id, const std::string& point,
                      int64_t* param_ms) {
  if (!worker_id.empty() && FaultInjected(worker_id + "/" + point, param_ms)) {
    return true;
  }
  return FaultInjected(point, param_ms);
}

/// worker.<cmd>.crash kills the process mid-request (as if SIGKILLed);
/// worker.<cmd>.hang stalls it for the point's param (default 30s) —
/// long enough to trip any reasonable RPC deadline, short enough that a
/// test process still unwinds.
void MaybeInjectWorkerFault(const std::string& worker_id, ServeCmd cmd) {
  const std::string base = std::string("worker.") + ServeCmdWireName(cmd);
  if (WorkerFaultFires(worker_id, base + ".crash", nullptr)) {
    _exit(134);
  }
  int64_t hang_ms = 30 * 1000;
  if (WorkerFaultFires(worker_id, base + ".hang", &hang_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hang_ms));
  }
}

}  // namespace

Status ValidateServeOptions(const ServeOptions& options, bool will_listen) {
  if (will_listen && options.socket_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "no listener configured: set a socket path and/or --tcp-port");
  }
  if (options.tcp_port > 65535) {
    return Status::InvalidArgument("tcp_port out of range: " +
                                   std::to_string(options.tcp_port));
  }
  if (options.top_n == 0) {
    return Status::InvalidArgument("top_n must be positive");
  }
  if (options.idle_timeout_ms < 0) {
    return Status::InvalidArgument("idle_timeout_ms must be >= 0, got " +
                                   std::to_string(options.idle_timeout_ms));
  }
  if (options.max_sessions == 0 && options.idle_timeout_ms > 0) {
    return Status::InvalidArgument(
        "idle_timeout_ms with max_sessions=0 (unbounded) would let the "
        "session table grow faster than the idle sweep can shed it; set a "
        "session bound or disable the timeout");
  }
  if (!options.default_engine.empty() &&
      !EngineRegistered(options.default_engine)) {
    return Status::InvalidArgument(
        "unknown default engine '" + options.default_engine +
        "' (registered: " + Join(RegisteredEngineNames(), ", ") + ")");
  }
  if (!options.worker_id.empty() && !ValidSessionId(options.worker_id)) {
    return Status::InvalidArgument(
        "worker_id must be 1..64 chars of [A-Za-z0-9._-], got '" +
        options.worker_id + "'");
  }
  if (options.ingest_retire_frames < 1) {
    return Status::InvalidArgument(
        "ingest_retire_frames must be >= 1, got " +
        std::to_string(options.ingest_retire_frames));
  }
  if (!options.corpus_snapshot_dir.empty()) {
    // Probe now: an unwritable snapshot dir would otherwise degrade every
    // cold corpus load into a mid-request warning.
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.corpus_snapshot_dir, ec);
    if (ec) {
      return Status::IOError("corpus_snapshot_dir '" +
                             options.corpus_snapshot_dir +
                             "' cannot be created: " + ec.message());
    }
    const fs::path probe =
        fs::path(options.corpus_snapshot_dir) / ".mivid_write_probe";
    std::FILE* f = std::fopen(probe.string().c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("corpus_snapshot_dir '" +
                             options.corpus_snapshot_dir +
                             "' is not writable");
    }
    std::fclose(f);
    fs::remove(probe, ec);
  }
  return Status::OK();
}

RetrievalServer::RetrievalServer(VideoDb* db, ServeOptions options)
    : db_(db),
      options_(std::move(options)),
      corpora_(db, options_.query, options_.corpus_snapshot_dir),
      sessions_(db, &corpora_,
                SessionManagerOptions{options_.default_engine,
                                      options_.max_sessions,
                                      options_.idle_timeout_ms,
                                      options_.top_n}) {
  if (!options_.access_log_path.empty() || !options_.slow_log_path.empty()) {
    AccessLog::Options log;
    log.path = options_.access_log_path;
    log.slow_path = options_.slow_log_path;
    log.slow_threshold_ms = options_.slow_threshold_ms;
    Status opened = access_log_.Open(log);
    if (!opened.ok()) {
      MIVID_LOG(Warn) << "access log disabled: " << opened.message();
    }
  }
}

RetrievalServer::~RetrievalServer() { Stop(); }

std::string RetrievalServer::HandleLine(const std::string& line) {
  MIVID_SCOPED_TIMER("serve/request_seconds");
  MIVID_METRIC_COUNT("serve/requests", 1);
  // Anchor the request's "deadline_ms" budget at arrival: whatever part
  // of it is spent waiting for a dispatch slot is gone for good.
  const std::chrono::steady_clock::time_point arrival =
      std::chrono::steady_clock::now();

  Result<ServeRequest> parsed = ParseServeRequest(line);
  if (!parsed.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(parsed.status());
  }
  const ServeRequest& req = parsed.value();

  // Distributed trace span for the whole request: joins the context the
  // sender stamped onto the line (coordinator or client), or roots a
  // fresh trace. Inert when tracing is off.
  ContextSpan span(ServeCmdSpanName(req.cmd), req.trace_id, req.parent_span);

  // The audit (latency breakdown) only runs when an access log is
  // configured; disabled it costs one bool read and no clock reads.
  const bool audited = access_log_.enabled();
  RequestAudit audit;
  std::chrono::steady_clock::time_point audit_start;
  if (audited) audit_start = std::chrono::steady_clock::now();

  // Bounded admission: hold one in-flight slot for the request lifetime,
  // or reject right away so callers see backpressure instead of latency.
  const int depth = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  AdmissionSlot slot{&in_flight_};
  MIVID_METRIC_GAUGE_SET("serve/queue_depth", depth);
  std::string response;
  if (options_.max_pending > 0 &&
      depth > static_cast<int>(options_.max_pending)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    MIVID_METRIC_COUNT("serve/requests_rejected", 1);
    response = ErrorResponse(Status::ResourceExhausted(
        "request queue full (" + std::to_string(options_.max_pending) +
        " in flight); retry later"));
  } else {
    if (options_.admission_hook) options_.admission_hook(req);
    response = Dispatch(req, audited ? &audit : nullptr, arrival);
    served_.fetch_add(1, std::memory_order_relaxed);
  }

  if (audited) {
    AccessRecord record;
    record.role = "worker";
    record.node = options_.worker_id.empty() ? "serve" : options_.worker_id;
    record.cmd = ServeCmdWireName(req.cmd);
    record.session = req.session_id;
    record.engine = req.engine;
    record.status = ResponseStatusCode(response);
    record.trace_id =
        span.active() ? span.context().trace_id : req.trace_id;
    record.cameras = req.cameras;
    if (record.cameras.empty() && !req.camera_id.empty()) {
      record.cameras.push_back(req.camera_id);
    }
    // Session-addressed requests (rank, feedback, ...) name no camera on
    // the wire; resolve it from the live session so the log can answer
    // "which corpus was this slow query against" on its own. camera_id
    // and engine are immutable after Build, so reading them without the
    // session mutex is safe.
    if ((record.cameras.empty() || record.engine.empty()) &&
        !req.session_id.empty()) {
      Result<std::shared_ptr<ServeSession>> live =
          sessions_.Get(req.session_id);
      if (live.ok()) {
        if (record.cameras.empty() && !live.value()->camera_id.empty()) {
          record.cameras.push_back(live.value()->camera_id);
        }
        if (record.engine.empty()) record.engine = live.value()->engine;
      }
    }
    record.bytes_in = line.size();
    record.bytes_out = response.size();
    record.total_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - audit_start)
            .count();
    record.audit = audit;
    access_log_.Write(record);
  }
  // worker.reply.truncate hands the client half a response line — the
  // shape of a worker dying mid-write — to exercise the coordinator's
  // malformed-reply handling.
  if (FaultsArmed() &&
      WorkerFaultFires(options_.worker_id, "worker.reply.truncate", nullptr)) {
    response.resize(response.size() / 2);
  }
  return response;
}

std::string RetrievalServer::Dispatch(
    const ServeRequest& req, RequestAudit* audit,
    std::chrono::steady_clock::time_point arrival) {
  // Sheds a request whose wire deadline lapsed before execution started
  // (typically while queued behind slower work): answering it late would
  // only feed a coordinator that already failed over.
  auto deadline_spent = [&] {
    if (req.deadline_ms <= 0) return false;
    const int64_t waited_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - arrival)
            .count();
    return waited_ms >= req.deadline_ms;
  };
  auto shed = [&] {
    MIVID_METRIC_COUNT("serve/deadline_shed", 1);
    return ErrorResponse(Status::DeadlineExceeded(
        "deadline of " + std::to_string(req.deadline_ms) +
        "ms expired before dispatch; shedding"));
  };
  ThreadPool* pool = GlobalPool();
  if (pool == nullptr || ThreadPool::InWorkerThread()) {
    // Serial build (MIVID_THREADS=1) or already on a worker: run inline.
    if (deadline_spent()) return shed();
    RequestAuditScope scope(audit);
    return Execute(req);
  }
  // Hand the work to the shared pool; the connection thread blocks until
  // its request's turn comes and finishes, which keeps responses on one
  // connection strictly ordered. The audit scope is installed inside the
  // task — Execute runs on a pool worker, not this thread — and the gap
  // between submit and task start is the queue wait.
  std::chrono::steady_clock::time_point submitted;
  if (audit != nullptr) submitted = std::chrono::steady_clock::now();
  std::packaged_task<std::string()> task(
      [this, &req, audit, submitted, &deadline_spent, &shed] {
        if (audit != nullptr) {
          audit->queue_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - submitted)
                                .count();
        }
        if (deadline_spent()) return shed();
        RequestAuditScope scope(audit);
        return Execute(req);
      });
  std::future<std::string> done = task.get_future();
  pool->Submit([&task] { task(); });
  return done.get();
}

std::string RetrievalServer::Execute(const ServeRequest& req) {
  if (FaultsArmed()) MaybeInjectWorkerFault(options_.worker_id, req.cmd);
  switch (req.cmd) {
    case ServeCmd::kOpen:
      return CmdOpen(req);
    case ServeCmd::kRank:
      return CmdRank(req);
    case ServeCmd::kFeedback:
      return CmdFeedback(req);
    case ServeCmd::kSave:
      return CmdSave(req);
    case ServeCmd::kClose:
      return CmdClose(req);
    case ServeCmd::kStats:
      return CmdStats(req);
    case ServeCmd::kShutdown:
      return CmdShutdown(req);
    case ServeCmd::kPing:
      return CmdPing(req);
    case ServeCmd::kMetrics:
      return CmdMetrics(req);
    case ServeCmd::kClusterStats:
      return CmdClusterStats(req);
    case ServeCmd::kTraceDump:
      return CmdTraceDump(req);
    case ServeCmd::kIngest:
      return CmdIngest(req);
    case ServeCmd::kRefresh:
      return CmdRefresh(req);
    case ServeCmd::kPublish:
      return CmdPublish(req);
  }
  return ErrorResponse(Status::Internal("unhandled command"));
}

std::string RetrievalServer::CmdOpen(const ServeRequest& req) {
  if (!req.engine.empty() && !EngineRegistered(req.engine)) {
    return ErrorResponse(Status::InvalidArgument(
        "unknown engine '" + req.engine + "' (registered: " +
        Join(RegisteredEngineNames(), ", ") + ")"));
  }
  Result<SessionManager::OpenResult> opened =
      sessions_.Open(req.session_id, req.camera_id, req.engine);
  if (!opened.ok()) return ErrorResponse(opened.status());
  const SessionManager::OpenResult& result = opened.value();
  ServeSession& s = *result.session;
  std::lock_guard<std::mutex> lock(s.mu);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "open")
      .Str("session", s.id)
      .Str("camera", s.camera_id)
      .Str("engine", s.engine)
      .Int("round", s.session->round())
      .Int("bags", static_cast<int64_t>(s.session->dataset().bags().size()))
      .Int("epoch",
           static_cast<int64_t>(s.epoch != nullptr ? s.epoch->id : 0))
      .Bool("resumed", result.resumed)
      .Bool("already_open", result.already_open);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdRank(const ServeRequest& req) {
  // Serve-path rank latency on its own histogram: this is the query the
  // cluster's p99 target is stated against (bench/micro_perf.cc reports
  // its p99 into BENCH_micro.json).
  MIVID_SCOPED_TIMER("serve/rank_seconds");
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);

  // Every ranking (engine or heuristic) covers the whole corpus, so the
  // limit and the reported total are known before ranking; a finite limit
  // then goes through the top-k path, which lets a trained engine skip
  // bags that provably miss the cut.
  const size_t total = s.session->dataset().bags().size();
  size_t limit = total;
  if (req.top == 0) {
    limit = s.session->top_n();
  } else if (req.top > 0) {
    limit = static_cast<size_t>(req.top);
  }
  limit = std::min(limit, total);
  const std::vector<ScoredBag> ranking = [&] {
    AuditPhaseTimer rank_phase(&RequestAudit::rank_ms);
    return s.session->CurrentTopK(limit);
  }();

  AuditPhaseTimer serialize_phase(&RequestAudit::serialize_ms);
  std::string items = "[";
  for (size_t i = 0; i < limit && i < ranking.size(); ++i) {
    if (i > 0) items += ',';
    items += StrFormat("{\"bag\":%d,\"score\":%.17g}", ranking[i].bag_id,
                       ranking[i].score);
  }
  items += ']';

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "rank")
      .Str("session", s.id)
      .Int("round", s.session->round())
      .Bool("trained", s.session->engine().trained())
      .Int("epoch",
           static_cast<int64_t>(s.epoch != nullptr ? s.epoch->id : 0))
      .Int("total", static_cast<int64_t>(total))
      .Raw("ranking", items);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdFeedback(const ServeRequest& req) {
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);

  Status applied = s.session->SubmitFeedback(req.labels);
  if (!applied.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(applied);
  }
  // Journal every feedback round: a crash (or eviction) after this point
  // resumes the session at exactly this state.
  Status journaled = sessions_.Save(s);
  if (!journaled.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(journaled);
  }
  MIVID_METRIC_COUNT("serve/feedback_rounds", 1);

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "feedback")
      .Str("session", s.id)
      .Int("round", s.session->round())
      .Bool("trained", s.session->engine().trained())
      .Int("labeled", static_cast<int64_t>(s.session->LabeledBags().size()))
      .Bool("journaled", true);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdSave(const ServeRequest& req) {
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);
  Status saved = sessions_.Save(s);
  if (!saved.ok()) return ErrorResponse(saved);
  JsonLineBuilder out;
  out.Bool("ok", true).Str("cmd", "save").Str("session", s.id).Int(
      "round", s.session->round());
  return std::move(out).Build();
}

std::string RetrievalServer::CmdClose(const ServeRequest& req) {
  Status closed = sessions_.Close(req.session_id, req.discard);
  if (!closed.ok()) return ErrorResponse(closed);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "close")
      .Str("session", req.session_id)
      .Bool("journaled", !req.discard);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdStats(const ServeRequest&) {
  const CorpusManager::Stats corpus = corpora_.stats();
  std::string ids = "[";
  bool first = true;
  for (const std::string& id : sessions_.open_ids()) {
    if (!first) ids += ',';
    first = false;
    ids += '"';
    ids += JsonEscape(id);
    ids += '"';
  }
  ids += ']';
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "stats")
      .Str("worker", options_.worker_id)
      .Int("sessions_open", static_cast<int64_t>(sessions_.open_count()))
      .Raw("sessions", ids)
      .Int("corpora_cached", static_cast<int64_t>(corpus.cached))
      .Int("corpus_cache_hits", static_cast<int64_t>(corpus.hits))
      .Int("corpus_cache_misses", static_cast<int64_t>(corpus.misses))
      .Int("epoch_publishes", static_cast<int64_t>(corpus.publishes))
      .Int("tail_clips", static_cast<int64_t>(corpus.tail_clips))
      .Int("requests_served", static_cast<int64_t>(served_.load()))
      .Int("requests_rejected", static_cast<int64_t>(rejected_.load()))
      .Int("in_flight", in_flight_.load());
  return std::move(out).Build();
}

std::string RetrievalServer::CmdShutdown(const ServeRequest&) {
  RequestShutdown();
  JsonLineBuilder out;
  out.Bool("ok", true).Str("cmd", "shutdown").Bool("shutting_down", true);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdPing(const ServeRequest&) {
  // Health probe for the cluster coordinator and fleet dashboard:
  // identity, build/SIMD tier/uptime (what is running, not just that it
  // runs), plus the shards (cameras) this worker currently holds.
  std::string cameras = "[";
  bool first = true;
  for (const std::string& camera : corpora_.cached_cameras()) {
    if (!first) cameras += ',';
    first = false;
    cameras += '"';
    cameras += JsonEscape(camera);
    cameras += '"';
  }
  cameras += ']';
  const CorpusManager::Stats corpus = corpora_.stats();
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "ping")
      .Str("worker", options_.worker_id)
      .Str("role", "worker")
      .Str("version", kMividVersion)
      .Str("protocol_version", kProtocolVersion)
      .Str("simd", SimdTierName(ActiveSimdTier()))
      .Int("uptime_s", UptimeSeconds())
      .Int("sessions_open", static_cast<int64_t>(sessions_.open_count()))
      .Raw("cameras", cameras)
      .Int("corpora_cached", static_cast<int64_t>(corpus.cached))
      .Int("snapshot_hits", static_cast<int64_t>(corpus.snapshot_hits))
      .Int("snapshot_writes", static_cast<int64_t>(corpus.snapshot_writes))
      .Int("in_flight", in_flight_.load());
  return std::move(out).Build();
}

std::string RetrievalServer::CmdMetrics(const ServeRequest&) {
  // Raw registry snapshot in wire form, scraped by the coordinator's
  // cluster_stats aggregation (obs/metrics_wire.h).
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "metrics")
      .Str("worker", options_.worker_id)
      .Str("role", "worker")
      .Str("version", kMividVersion)
      .Bool("metrics_enabled", MetricsEnabled())
      .Int("uptime_s", UptimeSeconds())
      .Int("sessions_open", static_cast<int64_t>(sessions_.open_count()))
      .Int("requests_served", static_cast<int64_t>(served_.load()))
      .Int("requests_rejected", static_cast<int64_t>(rejected_.load()))
      .Raw("metrics",
           MetricsSnapshotToWireJson(MetricsRegistry::Global().Snapshot()));
  return std::move(out).Build();
}

std::string RetrievalServer::CmdClusterStats(const ServeRequest&) {
  // A lone worker answers cluster_stats as a fleet of one, so the fleet
  // dashboard (mivid_cli top) works against single-node deployments too.
  const std::string wire =
      MetricsSnapshotToWireJson(MetricsRegistry::Global().Snapshot());
  JsonLineBuilder entry;
  entry.Str("worker_id", options_.worker_id)
      .Str("endpoint", "")
      .Bool("alive", true)
      .Str("version", kMividVersion)
      .Int("uptime_s", UptimeSeconds())
      .Int("sessions_open", static_cast<int64_t>(sessions_.open_count()))
      .Int("requests_served", static_cast<int64_t>(served_.load()))
      .Int("requests_rejected", static_cast<int64_t>(rejected_.load()))
      .Raw("metrics", wire);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "cluster_stats")
      .Str("role", "worker")
      .Int("workers_alive", 1)
      .Raw("workers", "[" + std::move(entry).Build() + "]")
      .Raw("fleet", wire);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdTraceDump(const ServeRequest&) {
  // This worker's Chrome trace, inline. The embedded clock_sync metadata
  // carries the wall-clock anchor the coordinator-side stitcher uses to
  // rebase it onto the fleet timeline.
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "trace_dump")
      .Str("worker", options_.worker_id)
      .Str("role", "worker")
      .Bool("tracing_enabled", TracingEnabled())
      .Raw("trace", TraceToChromeJson());
  return std::move(out).Build();
}

std::shared_ptr<CameraIngestor> RetrievalServer::IngestorFor(
    const std::string& camera_id) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  auto it = ingestors_.find(camera_id);
  if (it != ingestors_.end()) return it->second;
  IngestOptions ingest;
  ingest.query = options_.query;
  ingest.clip_frames = options_.ingest_clip_frames;
  ingest.retire_after_frames = options_.ingest_retire_frames;
  auto created =
      std::make_shared<CameraIngestor>(camera_id, db_, &corpora_, ingest);
  ingestors_.emplace(camera_id, created);
  return created;
}

std::string RetrievalServer::CmdIngest(const ServeRequest& req) {
  MIVID_SCOPED_TIMER("serve/ingest_seconds");
  std::shared_ptr<CameraIngestor> ingestor = IngestorFor(req.camera_id);

  int64_t frames = 0;
  int64_t late = 0;
  int64_t clips_cut = 0;
  for (const FrameObservations& frame : req.frames) {
    Result<CameraIngestor::FrameResult> observed = ingestor->Observe(frame);
    if (!observed.ok()) return ErrorResponse(observed.status());
    ++frames;
    late += observed.value().late_observations;
    clips_cut += observed.value().clips_cut;
  }
  for (const IncidentRecord& incident : req.incidents) {
    Status annotated =
        ingestor->AddIncident(incident.type, incident.begin_frame,
                              incident.end_frame, incident.vehicle_ids);
    if (!annotated.ok()) return ErrorResponse(annotated);
  }

  int clip_id = -1;
  int64_t bags_staged = 0;
  if (req.cut || req.publish) {
    Result<CameraIngestor::CutResult> cut = ingestor->Cut();
    if (!cut.ok()) return ErrorResponse(cut.status());
    clip_id = cut.value().clip_id;
    bags_staged = static_cast<int64_t>(cut.value().bags_staged);
    if (clip_id >= 0) ++clips_cut;
  }

  int64_t epoch = 0;
  bool published = false;
  if (req.publish) {
    Result<std::shared_ptr<const CorpusEpoch>> swapped =
        corpora_.Publish(req.camera_id);
    if (!swapped.ok()) return ErrorResponse(swapped.status());
    epoch = static_cast<int64_t>(swapped.value()->id);
    published = true;
  }

  const CameraIngestor::Stats stats = ingestor->stats();
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "ingest")
      .Str("camera", req.camera_id)
      .Int("frames", frames)
      .Int("late_observations", late)
      .Int("clips_cut", clips_cut)
      .Int("clip", clip_id)
      .Int("bags_staged", bags_staged)
      .Int("stream_frame", stats.stream_frame)
      .Int("lag_frames", stats.lag_frames)
      .Bool("published", published);
  if (published) out.Int("epoch", epoch);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdRefresh(const ServeRequest& req) {
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);
  const uint64_t before = s.epoch != nullptr ? s.epoch->id : 0;
  Status refreshed = sessions_.Refresh(&s);
  if (!refreshed.ok()) return ErrorResponse(refreshed);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "refresh")
      .Str("session", s.id)
      .Str("camera", s.camera_id)
      .Int("epoch", static_cast<int64_t>(s.epoch->id))
      .Bool("refreshed", s.epoch->id != before)
      .Int("round", s.session->round())
      .Int("bags", static_cast<int64_t>(s.session->dataset().bags().size()));
  return std::move(out).Build();
}

std::string RetrievalServer::CmdPublish(const ServeRequest& req) {
  Result<std::shared_ptr<const CorpusEpoch>> swapped =
      corpora_.Publish(req.camera_id);
  if (!swapped.ok()) return ErrorResponse(swapped.status());
  const CorpusEpoch& epoch = *swapped.value();
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "publish")
      .Str("camera", req.camera_id)
      .Int("epoch", static_cast<int64_t>(epoch.id))
      .Int("bags",
           static_cast<int64_t>(epoch.corpus->dataset.bags().size()));
  return std::move(out).Build();
}

int64_t RetrievalServer::UptimeSeconds() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

void RetrievalServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void RetrievalServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load(std::memory_order_acquire);
  });
}

bool RetrievalServer::WaitForShutdownFor(int timeout_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] {
                                 return shutdown_requested_ ||
                                        stopping_.load(
                                            std::memory_order_acquire);
                               });
}

Status RetrievalServer::Start() {
  MIVID_RETURN_IF_ERROR(ValidateServeOptions(options_, /*will_listen=*/true));
  LineTransportOptions transport;
  transport.uds_path = options_.socket_path;
  transport.tcp_host = options_.tcp_host;
  transport.tcp_port = options_.tcp_port;
  transport.poll_ms = kAcceptPollMs;
  transport_ = std::make_unique<LineTransport>(
      std::move(transport),
      [this](const std::string& line) { return HandleLine(line); },
      [this] { sessions_.EvictIdle(); });
  Status started = transport_->Start();
  if (!started.ok()) {
    transport_.reset();
    return started;
  }
  MIVID_LOG(Info) << "mivid_serve listening on "
                  << (options_.socket_path.empty() ? "<no uds>"
                                                   : options_.socket_path)
                  << (transport_->tcp_port() >= 0
                          ? " and " + options_.tcp_host + ":" +
                                std::to_string(transport_->tcp_port())
                          : "");
  return Status::OK();
}

int RetrievalServer::tcp_port() const {
  return transport_ != nullptr ? transport_->tcp_port() : -1;
}

void RetrievalServer::Stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  RequestShutdown();
  if (transport_ != nullptr) transport_->Stop();
  Status saved = sessions_.SaveAll();
  if (!saved.ok()) {
    MIVID_LOG(Warn) << "failed to journal sessions on shutdown: "
                    << saved.message();
  }
  stopped_ = true;
}

}  // namespace mivid

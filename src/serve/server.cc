#include "serve/server.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "retrieval/engine_registry.h"

namespace mivid {

namespace {

/// Milliseconds between poll() wakeups in the accept loop; bounds both
/// shutdown latency and the idle-eviction sweep interval.
constexpr int kAcceptPollMs = 100;

/// Releases one admission slot on scope exit.
struct AdmissionSlot {
  std::atomic<int>* in_flight;
  ~AdmissionSlot() {
    const int depth =
        in_flight->fetch_sub(1, std::memory_order_acq_rel) - 1;
    MIVID_METRIC_GAUGE_SET("serve/queue_depth", depth);
  }
};

}  // namespace

Status ValidateServeOptions(const ServeOptions& options, bool will_listen) {
  if (will_listen && options.socket_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "no listener configured: set a socket path and/or --tcp-port");
  }
  if (options.tcp_port > 65535) {
    return Status::InvalidArgument("tcp_port out of range: " +
                                   std::to_string(options.tcp_port));
  }
  if (options.top_n == 0) {
    return Status::InvalidArgument("top_n must be positive");
  }
  if (options.idle_timeout_ms < 0) {
    return Status::InvalidArgument("idle_timeout_ms must be >= 0, got " +
                                   std::to_string(options.idle_timeout_ms));
  }
  if (options.max_sessions == 0 && options.idle_timeout_ms > 0) {
    return Status::InvalidArgument(
        "idle_timeout_ms with max_sessions=0 (unbounded) would let the "
        "session table grow faster than the idle sweep can shed it; set a "
        "session bound or disable the timeout");
  }
  if (!options.default_engine.empty() &&
      !EngineRegistered(options.default_engine)) {
    return Status::InvalidArgument(
        "unknown default engine '" + options.default_engine +
        "' (registered: " + Join(RegisteredEngineNames(), ", ") + ")");
  }
  if (!options.worker_id.empty() && !ValidSessionId(options.worker_id)) {
    return Status::InvalidArgument(
        "worker_id must be 1..64 chars of [A-Za-z0-9._-], got '" +
        options.worker_id + "'");
  }
  if (!options.corpus_snapshot_dir.empty()) {
    // Probe now: an unwritable snapshot dir would otherwise degrade every
    // cold corpus load into a mid-request warning.
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.corpus_snapshot_dir, ec);
    if (ec) {
      return Status::IOError("corpus_snapshot_dir '" +
                             options.corpus_snapshot_dir +
                             "' cannot be created: " + ec.message());
    }
    const fs::path probe =
        fs::path(options.corpus_snapshot_dir) / ".mivid_write_probe";
    std::FILE* f = std::fopen(probe.string().c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("corpus_snapshot_dir '" +
                             options.corpus_snapshot_dir +
                             "' is not writable");
    }
    std::fclose(f);
    fs::remove(probe, ec);
  }
  return Status::OK();
}

RetrievalServer::RetrievalServer(VideoDb* db, ServeOptions options)
    : db_(db),
      options_(std::move(options)),
      corpora_(db, options_.query, options_.corpus_snapshot_dir),
      sessions_(db, &corpora_,
                SessionManagerOptions{options_.default_engine,
                                      options_.max_sessions,
                                      options_.idle_timeout_ms,
                                      options_.top_n}) {}

RetrievalServer::~RetrievalServer() { Stop(); }

std::string RetrievalServer::HandleLine(const std::string& line) {
  MIVID_SCOPED_TIMER("serve/request_seconds");
  MIVID_METRIC_COUNT("serve/requests", 1);

  Result<ServeRequest> parsed = ParseServeRequest(line);
  if (!parsed.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(parsed.status());
  }
  const ServeRequest& req = parsed.value();

  // Bounded admission: hold one in-flight slot for the request lifetime,
  // or reject right away so callers see backpressure instead of latency.
  const int depth = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  AdmissionSlot slot{&in_flight_};
  MIVID_METRIC_GAUGE_SET("serve/queue_depth", depth);
  if (options_.max_pending > 0 &&
      depth > static_cast<int>(options_.max_pending)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    MIVID_METRIC_COUNT("serve/requests_rejected", 1);
    return ErrorResponse(Status::ResourceExhausted(
        "request queue full (" + std::to_string(options_.max_pending) +
        " in flight); retry later"));
  }
  if (options_.admission_hook) options_.admission_hook(req);

  std::string response = Dispatch(req);
  served_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::string RetrievalServer::Dispatch(const ServeRequest& req) {
  ThreadPool* pool = GlobalPool();
  if (pool == nullptr || ThreadPool::InWorkerThread()) {
    // Serial build (MIVID_THREADS=1) or already on a worker: run inline.
    return Execute(req);
  }
  // Hand the work to the shared pool; the connection thread blocks until
  // its request's turn comes and finishes, which keeps responses on one
  // connection strictly ordered.
  std::packaged_task<std::string()> task([this, &req] { return Execute(req); });
  std::future<std::string> done = task.get_future();
  pool->Submit([&task] { task(); });
  return done.get();
}

std::string RetrievalServer::Execute(const ServeRequest& req) {
  switch (req.cmd) {
    case ServeCmd::kOpen:
      return CmdOpen(req);
    case ServeCmd::kRank:
      return CmdRank(req);
    case ServeCmd::kFeedback:
      return CmdFeedback(req);
    case ServeCmd::kSave:
      return CmdSave(req);
    case ServeCmd::kClose:
      return CmdClose(req);
    case ServeCmd::kStats:
      return CmdStats(req);
    case ServeCmd::kShutdown:
      return CmdShutdown(req);
    case ServeCmd::kPing:
      return CmdPing(req);
  }
  return ErrorResponse(Status::Internal("unhandled command"));
}

std::string RetrievalServer::CmdOpen(const ServeRequest& req) {
  if (!req.engine.empty() && !EngineRegistered(req.engine)) {
    return ErrorResponse(Status::InvalidArgument(
        "unknown engine '" + req.engine + "' (registered: " +
        Join(RegisteredEngineNames(), ", ") + ")"));
  }
  Result<SessionManager::OpenResult> opened =
      sessions_.Open(req.session_id, req.camera_id, req.engine);
  if (!opened.ok()) return ErrorResponse(opened.status());
  const SessionManager::OpenResult& result = opened.value();
  ServeSession& s = *result.session;
  std::lock_guard<std::mutex> lock(s.mu);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "open")
      .Str("session", s.id)
      .Str("camera", s.camera_id)
      .Str("engine", s.engine)
      .Int("round", s.session->round())
      .Int("bags", static_cast<int64_t>(s.session->dataset().bags().size()))
      .Bool("resumed", result.resumed)
      .Bool("already_open", result.already_open);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdRank(const ServeRequest& req) {
  // Serve-path rank latency on its own histogram: this is the query the
  // cluster's p99 target is stated against (bench/micro_perf.cc reports
  // its p99 into BENCH_micro.json).
  MIVID_SCOPED_TIMER("serve/rank_seconds");
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);

  // Every ranking (engine or heuristic) covers the whole corpus, so the
  // limit and the reported total are known before ranking; a finite limit
  // then goes through the top-k path, which lets a trained engine skip
  // bags that provably miss the cut.
  const size_t total = s.session->dataset().bags().size();
  size_t limit = total;
  if (req.top == 0) {
    limit = s.session->top_n();
  } else if (req.top > 0) {
    limit = static_cast<size_t>(req.top);
  }
  limit = std::min(limit, total);
  const std::vector<ScoredBag> ranking = s.session->CurrentTopK(limit);

  std::string items = "[";
  for (size_t i = 0; i < limit && i < ranking.size(); ++i) {
    if (i > 0) items += ',';
    items += StrFormat("{\"bag\":%d,\"score\":%.17g}", ranking[i].bag_id,
                       ranking[i].score);
  }
  items += ']';

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "rank")
      .Str("session", s.id)
      .Int("round", s.session->round())
      .Bool("trained", s.session->engine().trained())
      .Int("total", static_cast<int64_t>(total))
      .Raw("ranking", items);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdFeedback(const ServeRequest& req) {
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);

  Status applied = s.session->SubmitFeedback(req.labels);
  if (!applied.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(applied);
  }
  // Journal every feedback round: a crash (or eviction) after this point
  // resumes the session at exactly this state.
  Status journaled = sessions_.Save(s);
  if (!journaled.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(journaled);
  }
  MIVID_METRIC_COUNT("serve/feedback_rounds", 1);

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "feedback")
      .Str("session", s.id)
      .Int("round", s.session->round())
      .Bool("trained", s.session->engine().trained())
      .Int("labeled", static_cast<int64_t>(s.session->LabeledBags().size()))
      .Bool("journaled", true);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdSave(const ServeRequest& req) {
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);
  Status saved = sessions_.Save(s);
  if (!saved.ok()) return ErrorResponse(saved);
  JsonLineBuilder out;
  out.Bool("ok", true).Str("cmd", "save").Str("session", s.id).Int(
      "round", s.session->round());
  return std::move(out).Build();
}

std::string RetrievalServer::CmdClose(const ServeRequest& req) {
  Status closed = sessions_.Close(req.session_id, req.discard);
  if (!closed.ok()) return ErrorResponse(closed);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "close")
      .Str("session", req.session_id)
      .Bool("journaled", !req.discard);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdStats(const ServeRequest&) {
  const CorpusManager::Stats corpus = corpora_.stats();
  std::string ids = "[";
  bool first = true;
  for (const std::string& id : sessions_.open_ids()) {
    if (!first) ids += ',';
    first = false;
    ids += '"';
    ids += JsonEscape(id);
    ids += '"';
  }
  ids += ']';
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "stats")
      .Str("worker", options_.worker_id)
      .Int("sessions_open", static_cast<int64_t>(sessions_.open_count()))
      .Raw("sessions", ids)
      .Int("corpora_cached", static_cast<int64_t>(corpus.cached))
      .Int("corpus_cache_hits", static_cast<int64_t>(corpus.hits))
      .Int("corpus_cache_misses", static_cast<int64_t>(corpus.misses))
      .Int("requests_served", static_cast<int64_t>(served_.load()))
      .Int("requests_rejected", static_cast<int64_t>(rejected_.load()))
      .Int("in_flight", in_flight_.load());
  return std::move(out).Build();
}

std::string RetrievalServer::CmdShutdown(const ServeRequest&) {
  RequestShutdown();
  JsonLineBuilder out;
  out.Bool("ok", true).Str("cmd", "shutdown").Bool("shutting_down", true);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdPing(const ServeRequest&) {
  // Health probe for the cluster coordinator: identity plus the shards
  // (cameras) this worker currently holds in its corpus cache.
  std::string cameras = "[";
  bool first = true;
  for (const std::string& camera : corpora_.cached_cameras()) {
    if (!first) cameras += ',';
    first = false;
    cameras += '"';
    cameras += JsonEscape(camera);
    cameras += '"';
  }
  cameras += ']';
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "ping")
      .Str("worker", options_.worker_id)
      .Int("sessions_open", static_cast<int64_t>(sessions_.open_count()))
      .Raw("cameras", cameras)
      .Int("in_flight", in_flight_.load());
  return std::move(out).Build();
}

void RetrievalServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void RetrievalServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load(std::memory_order_acquire);
  });
}

bool RetrievalServer::WaitForShutdownFor(int timeout_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] {
                                 return shutdown_requested_ ||
                                        stopping_.load(
                                            std::memory_order_acquire);
                               });
}

Status RetrievalServer::Start() {
  MIVID_RETURN_IF_ERROR(ValidateServeOptions(options_, /*will_listen=*/true));
  LineTransportOptions transport;
  transport.uds_path = options_.socket_path;
  transport.tcp_host = options_.tcp_host;
  transport.tcp_port = options_.tcp_port;
  transport.poll_ms = kAcceptPollMs;
  transport_ = std::make_unique<LineTransport>(
      std::move(transport),
      [this](const std::string& line) { return HandleLine(line); },
      [this] { sessions_.EvictIdle(); });
  Status started = transport_->Start();
  if (!started.ok()) {
    transport_.reset();
    return started;
  }
  MIVID_LOG(Info) << "mivid_serve listening on "
                  << (options_.socket_path.empty() ? "<no uds>"
                                                   : options_.socket_path)
                  << (transport_->tcp_port() >= 0
                          ? " and " + options_.tcp_host + ":" +
                                std::to_string(transport_->tcp_port())
                          : "");
  return Status::OK();
}

int RetrievalServer::tcp_port() const {
  return transport_ != nullptr ? transport_->tcp_port() : -1;
}

void RetrievalServer::Stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  RequestShutdown();
  if (transport_ != nullptr) transport_->Stop();
  Status saved = sessions_.SaveAll();
  if (!saved.ok()) {
    MIVID_LOG(Warn) << "failed to journal sessions on shutdown: "
                    << saved.message();
  }
  stopped_ = true;
}

}  // namespace mivid

#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace mivid {

namespace {

/// Milliseconds between poll() wakeups in the accept loop; bounds both
/// shutdown latency and the idle-eviction sweep interval.
constexpr int kAcceptPollMs = 100;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Releases one admission slot on scope exit.
struct AdmissionSlot {
  std::atomic<int>* in_flight;
  ~AdmissionSlot() {
    const int depth =
        in_flight->fetch_sub(1, std::memory_order_acq_rel) - 1;
    MIVID_METRIC_GAUGE_SET("serve/queue_depth", depth);
  }
};

}  // namespace

RetrievalServer::RetrievalServer(VideoDb* db, ServeOptions options)
    : db_(db),
      options_(std::move(options)),
      corpora_(db, options_.query, options_.corpus_snapshot_dir),
      sessions_(db, &corpora_,
                SessionManagerOptions{options_.default_engine,
                                      options_.max_sessions,
                                      options_.idle_timeout_ms,
                                      options_.top_n}) {}

RetrievalServer::~RetrievalServer() { Stop(); }

std::string RetrievalServer::HandleLine(const std::string& line) {
  MIVID_SCOPED_TIMER("serve/request_seconds");
  MIVID_METRIC_COUNT("serve/requests", 1);

  Result<ServeRequest> parsed = ParseServeRequest(line);
  if (!parsed.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(parsed.status());
  }
  const ServeRequest& req = parsed.value();

  // Bounded admission: hold one in-flight slot for the request lifetime,
  // or reject right away so callers see backpressure instead of latency.
  const int depth = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  AdmissionSlot slot{&in_flight_};
  MIVID_METRIC_GAUGE_SET("serve/queue_depth", depth);
  if (options_.max_pending > 0 &&
      depth > static_cast<int>(options_.max_pending)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    MIVID_METRIC_COUNT("serve/requests_rejected", 1);
    return ErrorResponse(Status::ResourceExhausted(
        "request queue full (" + std::to_string(options_.max_pending) +
        " in flight); retry later"));
  }
  if (options_.admission_hook) options_.admission_hook(req);

  std::string response = Dispatch(req);
  served_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::string RetrievalServer::Dispatch(const ServeRequest& req) {
  ThreadPool* pool = GlobalPool();
  if (pool == nullptr || ThreadPool::InWorkerThread()) {
    // Serial build (MIVID_THREADS=1) or already on a worker: run inline.
    return Execute(req);
  }
  // Hand the work to the shared pool; the connection thread blocks until
  // its request's turn comes and finishes, which keeps responses on one
  // connection strictly ordered.
  std::packaged_task<std::string()> task([this, &req] { return Execute(req); });
  std::future<std::string> done = task.get_future();
  pool->Submit([&task] { task(); });
  return done.get();
}

std::string RetrievalServer::Execute(const ServeRequest& req) {
  switch (req.cmd) {
    case ServeCmd::kOpen:
      return CmdOpen(req);
    case ServeCmd::kRank:
      return CmdRank(req);
    case ServeCmd::kFeedback:
      return CmdFeedback(req);
    case ServeCmd::kSave:
      return CmdSave(req);
    case ServeCmd::kClose:
      return CmdClose(req);
    case ServeCmd::kStats:
      return CmdStats(req);
    case ServeCmd::kShutdown:
      return CmdShutdown(req);
  }
  return ErrorResponse(Status::Internal("unhandled command"));
}

std::string RetrievalServer::CmdOpen(const ServeRequest& req) {
  if (!req.engine.empty() && !EngineRegistered(req.engine)) {
    return ErrorResponse(Status::InvalidArgument(
        "unknown engine '" + req.engine + "' (registered: " +
        Join(RegisteredEngineNames(), ", ") + ")"));
  }
  Result<SessionManager::OpenResult> opened =
      sessions_.Open(req.session_id, req.camera_id, req.engine);
  if (!opened.ok()) return ErrorResponse(opened.status());
  const SessionManager::OpenResult& result = opened.value();
  ServeSession& s = *result.session;
  std::lock_guard<std::mutex> lock(s.mu);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "open")
      .Str("session", s.id)
      .Str("camera", s.camera_id)
      .Str("engine", s.engine)
      .Int("round", s.session->round())
      .Int("bags", static_cast<int64_t>(s.session->dataset().bags().size()))
      .Bool("resumed", result.resumed)
      .Bool("already_open", result.already_open);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdRank(const ServeRequest& req) {
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);

  // Every ranking (engine or heuristic) covers the whole corpus, so the
  // limit and the reported total are known before ranking; a finite limit
  // then goes through the top-k path, which lets a trained engine skip
  // bags that provably miss the cut.
  const size_t total = s.session->dataset().bags().size();
  size_t limit = total;
  if (req.top == 0) {
    limit = s.session->top_n();
  } else if (req.top > 0) {
    limit = static_cast<size_t>(req.top);
  }
  limit = std::min(limit, total);
  const std::vector<ScoredBag> ranking = s.session->CurrentTopK(limit);

  std::string items = "[";
  for (size_t i = 0; i < limit && i < ranking.size(); ++i) {
    if (i > 0) items += ',';
    items += StrFormat("{\"bag\":%d,\"score\":%.17g}", ranking[i].bag_id,
                       ranking[i].score);
  }
  items += ']';

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "rank")
      .Str("session", s.id)
      .Int("round", s.session->round())
      .Bool("trained", s.session->engine().trained())
      .Int("total", static_cast<int64_t>(total))
      .Raw("ranking", items);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdFeedback(const ServeRequest& req) {
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);

  Status applied = s.session->SubmitFeedback(req.labels);
  if (!applied.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(applied);
  }
  // Journal every feedback round: a crash (or eviction) after this point
  // resumes the session at exactly this state.
  Status journaled = sessions_.Save(s);
  if (!journaled.ok()) {
    MIVID_METRIC_COUNT("serve/errors", 1);
    return ErrorResponse(journaled);
  }
  MIVID_METRIC_COUNT("serve/feedback_rounds", 1);

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "feedback")
      .Str("session", s.id)
      .Int("round", s.session->round())
      .Bool("trained", s.session->engine().trained())
      .Int("labeled", static_cast<int64_t>(s.session->LabeledBags().size()))
      .Bool("journaled", true);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdSave(const ServeRequest& req) {
  Result<std::shared_ptr<ServeSession>> got = sessions_.Get(req.session_id);
  if (!got.ok()) return ErrorResponse(got.status());
  ServeSession& s = *got.value();
  std::lock_guard<std::mutex> lock(s.mu);
  Status saved = sessions_.Save(s);
  if (!saved.ok()) return ErrorResponse(saved);
  JsonLineBuilder out;
  out.Bool("ok", true).Str("cmd", "save").Str("session", s.id).Int(
      "round", s.session->round());
  return std::move(out).Build();
}

std::string RetrievalServer::CmdClose(const ServeRequest& req) {
  Status closed = sessions_.Close(req.session_id, req.discard);
  if (!closed.ok()) return ErrorResponse(closed);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "close")
      .Str("session", req.session_id)
      .Bool("journaled", !req.discard);
  return std::move(out).Build();
}

std::string RetrievalServer::CmdStats(const ServeRequest&) {
  const CorpusManager::Stats corpus = corpora_.stats();
  std::string ids = "[";
  bool first = true;
  for (const std::string& id : sessions_.open_ids()) {
    if (!first) ids += ',';
    first = false;
    ids += '"';
    ids += JsonEscape(id);
    ids += '"';
  }
  ids += ']';
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "stats")
      .Int("sessions_open", static_cast<int64_t>(sessions_.open_count()))
      .Raw("sessions", ids)
      .Int("corpora_cached", static_cast<int64_t>(corpus.cached))
      .Int("corpus_cache_hits", static_cast<int64_t>(corpus.hits))
      .Int("corpus_cache_misses", static_cast<int64_t>(corpus.misses))
      .Int("requests_served", static_cast<int64_t>(served_.load()))
      .Int("requests_rejected", static_cast<int64_t>(rejected_.load()))
      .Int("in_flight", in_flight_.load());
  return std::move(out).Build();
}

std::string RetrievalServer::CmdShutdown(const ServeRequest&) {
  RequestShutdown();
  JsonLineBuilder out;
  out.Bool("ok", true).Str("cmd", "shutdown").Bool("shutting_down", true);
  return std::move(out).Build();
}

void RetrievalServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void RetrievalServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load(std::memory_order_acquire);
  });
}

bool RetrievalServer::WaitForShutdownFor(int timeout_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] {
                                 return shutdown_requested_ ||
                                        stopping_.load(
                                            std::memory_order_acquire);
                               });
}

Status RetrievalServer::Start() {
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("socket_path is required");
  }
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind " + options_.socket_path);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  accept_thread_ = std::thread(&RetrievalServer::AcceptLoop, this);
  MIVID_LOG(Info) << "mivid_serve listening on " << options_.socket_path;
  return Status::OK();
}

void RetrievalServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    sessions_.EvictIdle();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&RetrievalServer::ConnectionLoop, this, fd);
  }
}

void RetrievalServer::ConnectionLoop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (Trim(line).empty()) continue;
      std::string response = HandleLine(line);
      response += '\n';
      size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t w = ::send(fd, response.data() + sent,
                                 response.size() - sent, MSG_NOSIGNAL);
        if (w <= 0) {
          open = false;
          break;
        }
        sent += static_cast<size_t>(w);
      }
    }
  }
  // Deregister before closing so Stop() never shuts down a recycled fd.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

void RetrievalServer::Stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  RequestShutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // The accept thread is joined, so conn_threads_ is stable now.
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  Status saved = sessions_.SaveAll();
  if (!saved.ok()) {
    MIVID_LOG(Warn) << "failed to journal sessions on shutdown: "
                    << saved.message();
  }
  stopped_ = true;
}

}  // namespace mivid

// SessionManager: the live sessions hosted by mivid_serve.
//
// Each ServeSession pairs a RetrievalSession (private labels, private
// engine) with a shared immutable corpus from the CorpusManager. Commands
// against one session serialize on its own mutex, so concurrent clients
// on distinct sessions never contend while two clients sharing a session
// see a consistent feedback/rank order.
//
// Persistence is journal-based and crash-safe: every feedback round is
// written to the database as a SessionState under "serve_<id>" (atomic
// write-to-temp + rename). Opening a session whose journal exists — after
// an eviction, a clean restart, or a crash — rebuilds it by replaying the
// journaled labels, reproducing the exact ranking the client last saw.

#ifndef MIVID_SERVE_SESSION_MANAGER_H_
#define MIVID_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/video_db.h"
#include "serve/corpus_manager.h"

namespace mivid {

/// One hosted session. Command handlers lock `mu` for the duration of a
/// request; `last_used_ms` (steady-clock) feeds idle eviction.
///
/// The session pins the corpus epoch it opened on: concurrent ingest and
/// epoch publishes never change its rankings. `refresh` re-pins onto the
/// latest epoch, replaying the session's labels (bag ids are stable
/// across epochs, so feedback keeps its meaning).
struct ServeSession {
  std::string id;
  std::string camera_id;
  std::string engine;
  std::shared_ptr<const CorpusEpoch> epoch;
  std::unique_ptr<RetrievalSession> session;
  std::mutex mu;
  std::atomic<int64_t> last_used_ms{0};
};

struct SessionManagerOptions {
  std::string default_engine = "milrf";
  size_t max_sessions = 64;      ///< hosted at once; 0 = unlimited
  int64_t idle_timeout_ms = 0;   ///< journal + evict after; 0 = never
  size_t top_n = 20;             ///< results per round for new sessions
};

class SessionManager {
 public:
  /// `db` and `corpora` must outlive the manager.
  SessionManager(VideoDb* db, CorpusManager* corpora,
                 SessionManagerOptions options)
      : db_(db), corpora_(corpora), options_(std::move(options)) {}

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  struct OpenResult {
    std::shared_ptr<ServeSession> session;
    bool resumed = false;       ///< rebuilt from a journal
    bool already_open = false;  ///< was live in memory
  };

  /// Opens (or re-attaches to) session `id`. Resolution order: live in
  /// memory -> journal on disk -> fresh. `camera_id`/`engine` may be
  /// empty when a journal or live session supplies them; a non-empty
  /// value that contradicts the existing session is InvalidArgument.
  /// ResourceExhausted when the session table is full of busy sessions.
  Result<OpenResult> Open(const std::string& id, const std::string& camera_id,
                          const std::string& engine);

  /// The live session, or NotFound (clients re-open to resume).
  Result<std::shared_ptr<ServeSession>> Get(const std::string& id);

  /// Journals `session`'s current state. Caller holds session.mu.
  Status Save(const ServeSession& session);

  /// Re-pins `session` onto its camera's latest published epoch,
  /// rebuilding the retrieval state and replaying the session's labels.
  /// No-op when the session already pins the latest epoch. Caller holds
  /// session->mu.
  Status Refresh(ServeSession* session);

  /// Closes a live session: journals it (unless `discard`) and drops it
  /// from memory. The journal remains, so the id can be re-opened.
  Status Close(const std::string& id, bool discard);

  /// Journals and drops sessions idle past the timeout. Sessions whose
  /// lock is held (a request in flight) are skipped. Returns the number
  /// evicted.
  size_t EvictIdle();

  /// Journals every live session (graceful shutdown).
  Status SaveAll();

  size_t open_count() const;
  std::vector<std::string> open_ids() const;
  const SessionManagerOptions& options() const { return options_; }

  /// Monotonic milliseconds used for idle accounting.
  static int64_t NowMs();

 private:
  /// Builds a live session over its corpus, replaying `restore` if given.
  Result<std::shared_ptr<ServeSession>> Build(const std::string& id,
                                              const std::string& camera_id,
                                              const std::string& engine,
                                              const SessionState* restore);
  std::string JournalName(const std::string& id) const { return "serve_" + id; }

  VideoDb* db_;
  CorpusManager* corpora_;
  const SessionManagerOptions options_;
  mutable std::mutex mu_;  ///< guards sessions_ (not the sessions)
  std::map<std::string, std::shared_ptr<ServeSession>> sessions_;
};

}  // namespace mivid

#endif  // MIVID_SERVE_SESSION_MANAGER_H_

// Wire protocol of the mivid_serve daemon: newline-delimited JSON over a
// Unix-domain stream socket. One request line in, one response line out,
// in order, per connection.
//
// Requests:
//   {"cmd":"open","session":"s1","camera":"cam0","engine":"milrf"}
//   {"cmd":"rank","session":"s1","top":20}
//   {"cmd":"feedback","session":"s1",
//    "labels":[{"bag":3,"label":"relevant"},{"bag":9,"label":"irrelevant"}]}
//   {"cmd":"save","session":"s1"}
//   {"cmd":"close","session":"s1","discard":false}
//   {"cmd":"stats"}
//   {"cmd":"ping"}
//   {"cmd":"shutdown"}
//
// Streaming ingestion (docs/ingest.md):
//   {"cmd":"ingest","camera":"cam0",
//    "frames":[{"frame":0,"obs":[{"track":1,"x":12.5,"y":3.0}]}],
//    "incidents":[{"type":"sudden_stop","begin":40,"end":80,
//                  "vehicles":[1]}],
//    "cut":false,"publish":false}
//   {"cmd":"refresh","session":"s1"}   re-pin the session's epoch
//   {"cmd":"publish","camera":"cam0"}  publish staged bags as an epoch
//
// Versioning: requests may carry "v" — an integer major or a
// "major[.minor]" string. A major this server does not speak is
// rejected with INVALID_ARGUMENT; minors are additive and ignored.
// Absent "v" means v1. Responses to "ping" report the server's
// "protocol_version".
//
// Cluster extensions (understood by the mivid_coord coordinator; plain
// workers ignore them):
//   open may carry "cameras":["cam0","cam1",...] to span a session over
//   several corpora; feedback label entries may then carry "camera" to
//   address a bag within one corpus. "ping" is the health probe the
//   coordinator uses to watch its workers — the response reports the
//   worker id and the shards (cameras) it currently holds.
//
// Responses always carry "ok"; failures add "code" (UPPER_SNAKE status
// code, e.g. "RESOURCE_EXHAUSTED") and "error" (message). See
// docs/serving.md for the full specification.

#ifndef MIVID_SERVE_PROTOCOL_H_
#define MIVID_SERVE_PROTOCOL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ingest/stream_types.h"
#include "mil/bag.h"

namespace mivid {

/// Protocol version this server speaks. Majors gate wire compatibility
/// (a request whose "v" major differs is rejected); minors are additive
/// — 1.1 added ingest/refresh/publish and the "epoch" response field.
constexpr int kProtocolMajor = 1;
constexpr int kProtocolMinor = 1;
constexpr const char* kProtocolVersion = "1.1";

/// Protocol commands.
enum class ServeCmd : uint8_t {
  kOpen = 0,
  kRank = 1,
  kFeedback = 2,
  kSave = 3,
  kClose = 4,
  kStats = 5,
  kShutdown = 6,
  kPing = 7,
  kMetrics = 8,       ///< raw MetricsRegistry snapshot (wire form)
  kClusterStats = 9,  ///< fleet rollup + per-worker breakdown
  kTraceDump = 10,    ///< Chrome trace (stitched fleet-wide on the coord)
  kIngest = 11,       ///< stream frames/incidents into a live camera
  kRefresh = 12,      ///< re-pin a session onto the latest epoch
  kPublish = 13,      ///< publish a camera's staged bags as a new epoch
};

/// Hard bound on one request line. Longer lines are rejected with
/// InvalidArgument, and the transport hangs up on a connection that
/// streams this much without a newline.
constexpr size_t kMaxRequestBytes = 1u << 20;

/// One parsed request line.
struct ServeRequest {
  ServeCmd cmd = ServeCmd::kStats;
  std::string session_id;
  std::string camera_id;
  std::string engine;  ///< empty = server default (open only)
  int top = 0;         ///< rank: 0 = session top_n, -1 = full ranking
  bool discard = false;  ///< close: drop unsaved feedback
  std::vector<std::pair<int, BagLabel>> labels;  ///< feedback
  /// Per-label camera qualifier, parallel to `labels` ("" when absent).
  /// Used by the coordinator to address bags in multi-camera sessions;
  /// single-corpus workers ignore it.
  std::vector<std::string> label_cameras;
  /// Multi-camera open (coordinator extension); empty otherwise.
  std::vector<std::string> cameras;
  /// Distributed trace context ("trace"/"span" fields): trace_id names
  /// the whole request, parent_span is the sender's span id. Stamped by
  /// the coordinator onto relayed/fanned-out requests; clients may also
  /// supply their own. Empty when untraced.
  std::string trace_id;
  std::string parent_span;
  /// Remaining per-request budget in milliseconds at send time
  /// ("deadline_ms" field); 0 = no deadline. Workers shed requests whose
  /// budget was already spent waiting in the dispatch queue, and the
  /// coordinator clamps its own per-hop budget to the client's.
  int64_t deadline_ms = 0;
  /// Streaming ingestion (`ingest` only): per-frame observations in
  /// absolute stream frames, strictly ascending.
  std::vector<FrameObservations> frames;
  /// Incident annotations riding on `ingest` (absolute stream frames).
  std::vector<IncidentRecord> incidents;
  bool cut = false;      ///< ingest: cut the open clip after the frames
  bool publish = false;  ///< ingest: also publish a new epoch after the cut
};

/// Parses one request line. InvalidArgument on malformed JSON, unknown
/// commands, unknown labels, or missing required fields.
Result<ServeRequest> ParseServeRequest(std::string_view line);

/// Wire spelling of a command ("open", "cluster_stats", ...).
const char* ServeCmdWireName(ServeCmd cmd);

/// Stable span name for tracing one command on a worker ("serve/rank").
const char* ServeCmdSpanName(ServeCmd cmd);

/// Returns `line` with `"trace"`/`"span"` members appended to the
/// top-level object — the coordinator uses it to stamp a trace context
/// onto a request it relays verbatim. The caller must only stamp lines
/// whose parsed request had no trace context (JSON duplicate keys would
/// otherwise shadow the client's). Returns `line` unchanged when it is
/// not a JSON object line.
std::string StampTraceContext(const std::string& line,
                              const std::string& trace_id,
                              const std::string& span_id);

/// Returns `line` with `"deadline_ms":<ms>` appended to the top-level
/// object — the coordinator stamps its remaining per-hop budget onto
/// relayed lines. As with StampTraceContext, only stamp lines whose
/// parsed request carried no deadline of its own.
std::string StampDeadlineMs(const std::string& line, int64_t ms);

/// Canonical label spelling on the wire ("relevant", ...).
const char* BagLabelWireName(BagLabel label);

/// UPPER_SNAKE wire spelling of a status code ("RESOURCE_EXHAUSTED", ...).
const char* StatusCodeWireName(StatusCode code);

/// Wire status code of a response line, for access logging: "OK" for
/// success lines (they always start {"ok":true), else the "code" value.
std::string ResponseStatusCode(const std::string& response);

/// {"ok":false,"code":...,"error":...} for a failed request.
std::string ErrorResponse(const Status& status);

/// Incremental single-line JSON object writer for responses. Values are
/// escaped; Raw trusts the caller (nested arrays/objects).
class JsonLineBuilder {
 public:
  JsonLineBuilder& Str(std::string_view key, std::string_view value);
  JsonLineBuilder& Int(std::string_view key, int64_t value);
  JsonLineBuilder& Num(std::string_view key, double value);
  JsonLineBuilder& Bool(std::string_view key, bool value);
  JsonLineBuilder& Raw(std::string_view key, std::string_view json);
  std::string Build() &&;

 private:
  void Key(std::string_view key);
  std::string out_ = "{";
  bool first_ = true;
};

/// True when `id` is a safe session identifier: 1..64 chars drawn from
/// [A-Za-z0-9._-] (session ids become journal file names).
bool ValidSessionId(std::string_view id);

}  // namespace mivid

#endif  // MIVID_SERVE_PROTOCOL_H_

#include "serve/session_manager.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "serve/protocol.h"

namespace mivid {

int64_t SessionManager::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<std::shared_ptr<ServeSession>> SessionManager::Build(
    const std::string& id, const std::string& camera_id,
    const std::string& engine, const SessionState* restore) {
  MIVID_ASSIGN_OR_RETURN(std::shared_ptr<const CorpusEpoch> epoch,
                         corpora_->Snapshot(camera_id));

  // Mirrors QueryEngine::BuildCorpus consumers so a served session ranks
  // exactly like an in-process one over the same database and options.
  SessionOptions session_options = SessionOptionsFor(corpora_->query());
  session_options.engine = engine;
  session_options.top_n = options_.top_n;

  MIVID_ASSIGN_OR_RETURN(RetrievalSession session,
                         RetrievalSession::Create(epoch->corpus->dataset,
                                                  std::move(session_options)));

  auto serve = std::make_shared<ServeSession>();
  serve->id = id;
  serve->camera_id = camera_id;
  serve->engine = engine;
  serve->epoch = std::move(epoch);
  serve->session = std::make_unique<RetrievalSession>(std::move(session));
  serve->last_used_ms.store(NowMs(), std::memory_order_relaxed);
  if (restore != nullptr && !restore->labels.empty()) {
    MIVID_RETURN_IF_ERROR(
        serve->session->Restore(restore->labels, restore->round));
  }
  return serve;
}

Result<SessionManager::OpenResult> SessionManager::Open(
    const std::string& id, const std::string& camera_id,
    const std::string& engine) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      ServeSession& live = *it->second;
      if (!camera_id.empty() && camera_id != live.camera_id) {
        return Status::InvalidArgument("session '" + id + "' is open on camera '" +
                                       live.camera_id + "', not '" + camera_id +
                                       "'");
      }
      if (!engine.empty() && engine != live.engine) {
        return Status::InvalidArgument("session '" + id +
                                       "' is open with engine '" + live.engine +
                                       "', not '" + engine + "'");
      }
      live.last_used_ms.store(NowMs(), std::memory_order_relaxed);
      return OpenResult{it->second, /*resumed=*/false, /*already_open=*/true};
    }
  }

  // Not live: consult the journal. The load runs outside mu_ (corpus
  // extraction can take seconds); the insert below re-checks for a racing
  // open of the same id.
  Result<SessionState> journal = db_->LoadSession(JournalName(id));
  const bool resumed = journal.ok();
  std::string camera = camera_id;
  std::string eng = engine;
  if (resumed) {
    const SessionState& state = journal.value();
    if (!camera.empty() && camera != state.camera_id) {
      return Status::InvalidArgument("session '" + id +
                                     "' was journaled on camera '" +
                                     state.camera_id + "', not '" + camera +
                                     "'");
    }
    if (!eng.empty() && eng != state.engine) {
      return Status::InvalidArgument("session '" + id +
                                     "' was journaled with engine '" +
                                     state.engine + "', not '" + eng + "'");
    }
    camera = state.camera_id;
    eng = state.engine;
  } else if (!journal.status().IsNotFound()) {
    return journal.status();  // corrupt journal: surface, don't clobber
  }
  if (camera.empty()) {
    return Status::InvalidArgument("'camera' is required to open session '" +
                                   id + "'");
  }
  if (eng.empty()) eng = options_.default_engine;

  MIVID_ASSIGN_OR_RETURN(
      std::shared_ptr<ServeSession> built,
      Build(id, camera, eng, resumed ? &journal.value() : nullptr));

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sessions_.emplace(id, built);
  if (!inserted) {
    // A concurrent open won the race; adopt its session (both opens see
    // the same state either way — the journal was identical).
    it->second->last_used_ms.store(NowMs(), std::memory_order_relaxed);
    return OpenResult{it->second, /*resumed=*/false, /*already_open=*/true};
  }
  if (options_.max_sessions > 0 && sessions_.size() > options_.max_sessions) {
    // Over capacity: shed idle sessions; if every other session is busy
    // or fresh, refuse this open.
    bool evicted = false;
    const int64_t now = NowMs();
    for (auto sit = sessions_.begin(); sit != sessions_.end();) {
      if (sit->first != id && options_.idle_timeout_ms > 0 &&
          now - sit->second->last_used_ms.load(std::memory_order_relaxed) >=
              options_.idle_timeout_ms &&
          sit->second->mu.try_lock()) {
        std::lock_guard<std::mutex> session_lock(sit->second->mu,
                                                 std::adopt_lock);
        (void)Save(*sit->second);
        sit = sessions_.erase(sit);
        evicted = true;
      } else {
        ++sit;
      }
    }
    if (!evicted && sessions_.size() > options_.max_sessions) {
      sessions_.erase(id);
      MIVID_METRIC_COUNT("serve/opens_rejected", 1);
      return Status::ResourceExhausted(
          "session table full (" + std::to_string(options_.max_sessions) +
          " live sessions)");
    }
  }
  if (resumed) MIVID_METRIC_COUNT("serve/sessions_resumed", 1);
  MIVID_METRIC_GAUGE_SET("serve/sessions_open", sessions_.size());
  return OpenResult{built, resumed, /*already_open=*/false};
}

Result<std::shared_ptr<ServeSession>> SessionManager::Get(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("session '" + id +
                            "' is not open (open it to resume)");
  }
  it->second->last_used_ms.store(NowMs(), std::memory_order_relaxed);
  return it->second;
}

Status SessionManager::Save(const ServeSession& session) {
  SessionState state;
  state.camera_id = session.camera_id;
  state.engine = session.engine;
  state.round = session.session->round();
  state.labels = session.session->LabeledBags();
  MIVID_METRIC_COUNT("serve/journal_writes", 1);
  return db_->SaveSession(JournalName(session.id), state);
}

Status SessionManager::Refresh(ServeSession* session) {
  MIVID_ASSIGN_OR_RETURN(std::shared_ptr<const CorpusEpoch> epoch,
                         corpora_->Snapshot(session->camera_id));
  if (session->epoch != nullptr && epoch->id == session->epoch->id) {
    return Status::OK();  // already pinned to the latest epoch
  }

  SessionOptions session_options = SessionOptionsFor(corpora_->query());
  session_options.engine = session->engine;
  session_options.top_n = options_.top_n;

  // Rebuild over the new epoch's dataset, then replay the feedback so
  // the session resumes mid-conversation. Bag ids never change meaning
  // across epochs (new bags strictly append), so the replay reproduces
  // the same trained state the old epoch held, now over more bags.
  const std::vector<std::pair<int, BagLabel>> labels =
      session->session->LabeledBags();
  const int round = session->session->round();
  MIVID_ASSIGN_OR_RETURN(RetrievalSession rebuilt,
                         RetrievalSession::Create(epoch->corpus->dataset,
                                                  std::move(session_options)));
  if (!labels.empty()) {
    MIVID_RETURN_IF_ERROR(rebuilt.Restore(labels, round));
  }
  session->epoch = std::move(epoch);
  *session->session = std::move(rebuilt);
  MIVID_METRIC_COUNT("serve/session_refreshes", 1);
  return Status::OK();
}

Status SessionManager::Close(const std::string& id, bool discard) {
  std::shared_ptr<ServeSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("session '" + id + "' is not open");
    }
    session = it->second;
    sessions_.erase(it);
    MIVID_METRIC_GAUGE_SET("serve/sessions_open", sessions_.size());
  }
  // Out of mu_: an in-flight request on this session finishes first, and
  // its final state is what gets journaled.
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (discard) return Status::OK();
  return Save(*session);
}

size_t SessionManager::EvictIdle() {
  if (options_.idle_timeout_ms <= 0) return 0;
  const int64_t now = NowMs();
  std::vector<std::shared_ptr<ServeSession>> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      ServeSession& s = *it->second;
      const int64_t idle =
          now - s.last_used_ms.load(std::memory_order_relaxed);
      if (idle >= options_.idle_timeout_ms && s.mu.try_lock()) {
        s.mu.unlock();  // nobody mid-request; safe to detach
        evicted.push_back(it->second);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    if (!evicted.empty()) {
      MIVID_METRIC_GAUGE_SET("serve/sessions_open", sessions_.size());
    }
  }
  for (const auto& session : evicted) {
    std::lock_guard<std::mutex> session_lock(session->mu);
    (void)Save(*session);
    MIVID_METRIC_COUNT("serve/sessions_evicted", 1);
  }
  return evicted.size();
}

Status SessionManager::SaveAll() {
  std::vector<std::shared_ptr<ServeSession>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) live.push_back(session);
  }
  Status result = Status::OK();
  for (const auto& session : live) {
    std::lock_guard<std::mutex> session_lock(session->mu);
    Status s = Save(*session);
    if (!s.ok() && result.ok()) result = std::move(s);
  }
  return result;
}

size_t SessionManager::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::string> SessionManager::open_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

}  // namespace mivid

#include "mil/dataset.h"

#include "common/string_util.h"

namespace mivid {

MilDataset MilDataset::FromVideoSequences(
    const std::vector<VideoSequence>& windows, const FeatureScaler& scaler,
    bool include_velocity) {
  MilDataset ds;
  for (const auto& vs : windows) {
    MilBag bag;
    bag.id = vs.vs_id;
    for (const auto& ts : vs.ts) {
      MilInstance inst;
      inst.bag_id = vs.vs_id;
      inst.instance_id = ts.track_id;
      inst.features = ts.Flatten(scaler, include_velocity);
      inst.raw_features = ts.FlattenRaw(include_velocity);
      bag.instances.push_back(std::move(inst));
    }
    ds.AddBag(std::move(bag));
  }
  return ds;
}

const MilBag* MilDataset::FindBag(int bag_id) const {
  for (const auto& b : bags_) {
    if (b.id == bag_id) return &b;
  }
  return nullptr;
}

Status MilDataset::SetLabel(int bag_id, BagLabel label) {
  for (auto& b : bags_) {
    if (b.id == bag_id) {
      b.label = label;
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("no bag with id %d", bag_id));
}

std::vector<const MilBag*> MilDataset::BagsWithLabel(BagLabel label) const {
  std::vector<const MilBag*> out;
  for (const auto& b : bags_) {
    if (b.label == label) out.push_back(&b);
  }
  return out;
}

size_t MilDataset::CountLabel(BagLabel label) const {
  size_t n = 0;
  for (const auto& b : bags_) n += b.label == label ? 1 : 0;
  return n;
}

size_t MilDataset::TotalInstances() const {
  size_t n = 0;
  for (const auto& b : bags_) n += b.instances.size();
  return n;
}

void MilDataset::ResetLabels() {
  for (auto& b : bags_) b.label = BagLabel::kUnlabeled;
}

}  // namespace mivid

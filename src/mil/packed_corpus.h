// PackedCorpus: the SoA lowering of a MilDataset's instance features.
//
// Ranking scores every instance of every bag each round; chasing the
// per-instance Vec allocations makes that loop memory-bound. A corpus is
// lowered once into a PackedFeatureMatrix (all instances flattened in
// bag order) plus per-bag offsets, and every ranking pass streams the
// packed block through the SIMD batch primitives instead. The packing is
// pure layout: feature values are copied verbatim, so scores computed
// from the packed view are bit-identical to the per-Vec path.
//
// A corpus with mixed feature dimensions cannot be packed; `valid` stays
// false and consumers fall back to the Vec-at-a-time code path.

#ifndef MIVID_MIL_PACKED_CORPUS_H_
#define MIVID_MIL_PACKED_CORPUS_H_

#include <memory>
#include <vector>

#include "linalg/packed_matrix.h"
#include "mil/bag.h"

namespace mivid {

struct PackedCorpus {
  /// All instances of all bags, flattened in (bag, instance) order.
  PackedFeatureMatrix features;
  /// bag_begin[b] .. bag_begin[b+1] are bag b's columns in `features`
  /// (size = bag count + 1).
  std::vector<size_t> bag_begin;
  /// False when the corpus could not be packed (mixed dimensions).
  bool valid = false;
};

/// Lowers `bags` into a packed corpus. The result is valid iff every
/// instance shares one feature dimension (an empty corpus is valid).
std::shared_ptr<const PackedCorpus> BuildPackedCorpus(
    const std::vector<MilBag>& bags);

}  // namespace mivid

#endif  // MIVID_MIL_PACKED_CORPUS_H_

// MilDataset: the corpus of bags a retrieval session works over.

#ifndef MIVID_MIL_DATASET_H_
#define MIVID_MIL_DATASET_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "event/sliding_window.h"
#include "mil/bag.h"
#include "mil/packed_corpus.h"

namespace mivid {

/// Owns the bags of one corpus (one clip, or one camera's clips) and
/// tracks their feedback labels across relevance-feedback rounds.
class MilDataset {
 public:
  MilDataset() = default;

  /// Builds bags from extracted windows: one bag per VS, one instance per
  /// TS with the flattened normalized feature vector.
  static MilDataset FromVideoSequences(
      const std::vector<VideoSequence>& windows, const FeatureScaler& scaler,
      bool include_velocity);

  void AddBag(MilBag bag) {
    bags_.push_back(std::move(bag));
    packed_.reset();  // the cached SoA lowering no longer matches
  }

  size_t size() const { return bags_.size(); }
  const MilBag& bag(size_t i) const { return bags_[i]; }
  const std::vector<MilBag>& bags() const { return bags_; }

  /// Finds a bag by id; nullptr when absent.
  const MilBag* FindBag(int bag_id) const;

  /// Sets the feedback label for bag `bag_id`.
  Status SetLabel(int bag_id, BagLabel label);

  /// Bags currently carrying `label`.
  std::vector<const MilBag*> BagsWithLabel(BagLabel label) const;

  /// Count of bags carrying `label`.
  size_t CountLabel(BagLabel label) const;

  /// Total instance count across all bags.
  size_t TotalInstances() const;

  /// Clears all feedback labels (start a fresh session on the corpus).
  void ResetLabels();

  /// The SoA lowering of all instance features, built on first use and
  /// cached until AddBag invalidates it. Datasets are copied per session
  /// (the bags are identical), so copies share one packed corpus via the
  /// shared_ptr. Returns a corpus with valid == false when instance
  /// dimensions are mixed; callers then use the per-Vec paths.
  std::shared_ptr<const PackedCorpus> EnsurePacked() const {
    if (!packed_) packed_ = BuildPackedCorpus(bags_);
    return packed_;
  }

  /// Installs a prebuilt packing (the zero-copy corpus loader). The
  /// caller guarantees it matches `bags()` exactly.
  void AdoptPacked(std::shared_ptr<const PackedCorpus> packed) {
    packed_ = std::move(packed);
  }

 private:
  std::vector<MilBag> bags_;
  /// Mutable: lowering the bags is a cache fill, not an observable state
  /// change; engines holding a `const MilDataset*` still need it.
  mutable std::shared_ptr<const PackedCorpus> packed_;
};

}  // namespace mivid

#endif  // MIVID_MIL_DATASET_H_

// MilDataset: the corpus of bags a retrieval session works over.

#ifndef MIVID_MIL_DATASET_H_
#define MIVID_MIL_DATASET_H_

#include <vector>

#include "common/status.h"
#include "event/sliding_window.h"
#include "mil/bag.h"

namespace mivid {

/// Owns the bags of one corpus (one clip, or one camera's clips) and
/// tracks their feedback labels across relevance-feedback rounds.
class MilDataset {
 public:
  MilDataset() = default;

  /// Builds bags from extracted windows: one bag per VS, one instance per
  /// TS with the flattened normalized feature vector.
  static MilDataset FromVideoSequences(
      const std::vector<VideoSequence>& windows, const FeatureScaler& scaler,
      bool include_velocity);

  void AddBag(MilBag bag) { bags_.push_back(std::move(bag)); }

  size_t size() const { return bags_.size(); }
  const MilBag& bag(size_t i) const { return bags_[i]; }
  const std::vector<MilBag>& bags() const { return bags_; }

  /// Finds a bag by id; nullptr when absent.
  const MilBag* FindBag(int bag_id) const;

  /// Sets the feedback label for bag `bag_id`.
  Status SetLabel(int bag_id, BagLabel label);

  /// Bags currently carrying `label`.
  std::vector<const MilBag*> BagsWithLabel(BagLabel label) const;

  /// Count of bags carrying `label`.
  size_t CountLabel(BagLabel label) const;

  /// Total instance count across all bags.
  size_t TotalInstances() const;

  /// Clears all feedback labels (start a fresh session on the corpus).
  void ResetLabels();

 private:
  std::vector<MilBag> bags_;
};

}  // namespace mivid

#endif  // MIVID_MIL_DATASET_H_

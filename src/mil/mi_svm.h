// MI-SVM (Andrews, Tsochantaridis, Hofmann, NIPS 2003) — the paper's
// reference [16] for SVM-based Multiple Instance Learning, implemented as
// an additional baseline ranker.
//
// Alternating optimization: each positive bag is represented by one
// "witness" instance; a binary SVM separates the witnesses from every
// instance of the negative bags; witnesses are then re-selected as each
// positive bag's highest-scoring instance, until the selection stabilizes.

#ifndef MIVID_MIL_MI_SVM_H_
#define MIVID_MIL_MI_SVM_H_

#include <optional>

#include "common/status.h"
#include "mil/dataset.h"
#include "retrieval/engine.h"
#include "retrieval/heuristic.h"
#include "svm/binary_svm.h"

namespace mivid {

/// MI-SVM configuration.
struct MiSvmOptions {
  BinarySvmOptions svm;
  int max_outer_iterations = 10;  ///< witness re-selection rounds
  bool auto_sigma = true;         ///< RBF bandwidth from training spread
  double sigma_scale = 0.5;
};

/// MI-SVM ranker over a labeled MilDataset (uses both relevant and
/// irrelevant bag labels, unlike the one-class engine; registry key
/// "misvm").
class MiSvmEngine : public RetrievalEngine {
 public:
  /// `dataset` must outlive the engine.
  MiSvmEngine(MilDataset* dataset, MiSvmOptions options);

  std::string_view name() const override { return "misvm"; }

  /// Trains from the current labels. Needs >= 1 relevant and >= 1
  /// irrelevant labeled bag (the binary formulation requires negatives).
  Status Learn();

  /// Cold-start-aware Learn(): a no-op until both a relevant and an
  /// irrelevant labeled bag exist.
  Status Retrain() override;

  bool trained() const override { return model_.has_value(); }

  /// Ranks all bags by the maximum instance decision value.
  std::vector<ScoredBag> Rank() const override;

  int last_outer_iterations() const { return last_outer_iterations_; }
  const BinarySvmModel* model() const { return model_ ? &*model_ : nullptr; }

 private:
  MiSvmOptions options_;
  std::optional<BinarySvmModel> model_;
  int last_outer_iterations_ = 0;
};

}  // namespace mivid

#endif  // MIVID_MIL_MI_SVM_H_

// MI-SVM (Andrews, Tsochantaridis, Hofmann, NIPS 2003) — the paper's
// reference [16] for SVM-based Multiple Instance Learning, implemented as
// an additional baseline ranker.
//
// Alternating optimization: each positive bag is represented by one
// "witness" instance; a binary SVM separates the witnesses from every
// instance of the negative bags; witnesses are then re-selected as each
// positive bag's highest-scoring instance, until the selection stabilizes.

#ifndef MIVID_MIL_MI_SVM_H_
#define MIVID_MIL_MI_SVM_H_

#include <optional>

#include "common/status.h"
#include "mil/dataset.h"
#include "retrieval/heuristic.h"
#include "svm/binary_svm.h"

namespace mivid {

/// MI-SVM configuration.
struct MiSvmOptions {
  BinarySvmOptions svm;
  int max_outer_iterations = 10;  ///< witness re-selection rounds
  bool auto_sigma = true;         ///< RBF bandwidth from training spread
  double sigma_scale = 0.5;
};

/// MI-SVM ranker over a labeled MilDataset (uses both relevant and
/// irrelevant bag labels, unlike the one-class engine).
class MiSvmEngine {
 public:
  /// `dataset` must outlive the engine.
  MiSvmEngine(const MilDataset* dataset, MiSvmOptions options);

  /// Trains from the current labels. Needs >= 1 relevant and >= 1
  /// irrelevant labeled bag (the binary formulation requires negatives).
  Status Learn();

  bool trained() const { return model_.has_value(); }

  /// Ranks all bags by the maximum instance decision value.
  std::vector<ScoredBag> Rank() const;

  int last_outer_iterations() const { return last_outer_iterations_; }
  const BinarySvmModel* model() const { return model_ ? &*model_ : nullptr; }

 private:
  const MilDataset* dataset_;
  MiSvmOptions options_;
  std::optional<BinarySvmModel> model_;
  int last_outer_iterations_ = 0;
};

}  // namespace mivid

#endif  // MIVID_MIL_MI_SVM_H_

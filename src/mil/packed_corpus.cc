#include "mil/packed_corpus.h"

namespace mivid {

std::shared_ptr<const PackedCorpus> BuildPackedCorpus(
    const std::vector<MilBag>& bags) {
  auto corpus = std::make_shared<PackedCorpus>();
  corpus->bag_begin.assign(1, 0);
  corpus->bag_begin.reserve(bags.size() + 1);
  std::vector<const Vec*> instances;
  size_t dim = 0;
  bool uniform = true;
  for (const auto& bag : bags) {
    for (const auto& inst : bag.instances) {
      if (instances.empty()) {
        dim = inst.features.size();
      } else if (inst.features.size() != dim) {
        uniform = false;
      }
      instances.push_back(&inst.features);
    }
    corpus->bag_begin.push_back(instances.size());
  }
  if (uniform) {
    corpus->features = PackedFeatureMatrix::FromPoints(instances, dim);
    corpus->valid = true;
  }
  return corpus;
}

}  // namespace mivid

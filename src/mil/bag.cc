#include "mil/bag.h"

namespace mivid {

BagLabel BagLabelFromInstances(const std::vector<bool>& instance_relevant) {
  for (bool r : instance_relevant) {
    if (r) return BagLabel::kRelevant;
  }
  return BagLabel::kIrrelevant;
}

}  // namespace mivid

// Diverse Density (Maron & Lozano-Perez, NIPS 1998) and EM-DD (Zhang &
// Goldman, NIPS 2002) — the classic MIL formulations the paper surveys in
// Sec. 2.1, implemented as additional baseline rankers.
//
// Diverse Density seeks the concept point t maximizing
//   DD(t) = prod_{pos bags} (1 - prod_i (1 - P(t|x_i)))
//           * prod_{neg bags} prod_i (1 - P(t|x_i))
// with the Gaussian instance likelihood P(t|x) = exp(-|x - t|^2 / s^2).
// Optimized by gradient ascent from multiple starts (the instances of
// positive bags), as in the original two-step scheme. EM-DD replaces the
// noisy-or over positive bags with the single best ("responsible")
// instance per bag, alternating selection (E) and optimization (M).

#ifndef MIVID_MIL_DIVERSE_DENSITY_H_
#define MIVID_MIL_DIVERSE_DENSITY_H_

#include <optional>

#include "common/status.h"
#include "mil/dataset.h"
#include "retrieval/heuristic.h"

namespace mivid {

/// Optimizer configuration.
struct DiverseDensityOptions {
  double scale = 0.35;          ///< Gaussian width s over normalized dims
  double learning_rate = 0.05;  ///< gradient ascent step
  int max_gradient_steps = 200;
  int max_em_iterations = 12;   ///< EM-DD outer loop
  size_t max_starts = 24;       ///< gradient restarts (positive instances)
  bool use_em = true;           ///< EM-DD (paper: more robust) vs plain DD
};

/// Diverse-Density MIL ranker over a labeled MilDataset.
class DiverseDensityEngine {
 public:
  /// `dataset` must outlive the engine.
  DiverseDensityEngine(const MilDataset* dataset,
                       DiverseDensityOptions options);

  /// Finds the maximum-DD concept from the current labels. Needs >= 1
  /// relevant bag (negatives are optional but sharpen the optimum).
  Status Learn();

  bool trained() const { return concept_.has_value(); }

  /// Ranks bags by the best instance likelihood under the concept.
  std::vector<ScoredBag> Rank() const;

  /// The learned concept point (valid when trained()).
  const Vec& concept_point() const { return *concept_; }
  double best_log_dd() const { return best_log_dd_; }

 private:
  double LogDd(const Vec& t,
               const std::vector<const MilBag*>& positive,
               const std::vector<const MilBag*>& negative) const;

  const MilDataset* dataset_;
  DiverseDensityOptions options_;
  std::optional<Vec> concept_;
  double best_log_dd_ = -1e300;
};

}  // namespace mivid

#endif  // MIVID_MIL_DIVERSE_DENSITY_H_

#include "mil/mi_svm.h"

#include <algorithm>
#include <cmath>

#include "linalg/packed_matrix.h"
#include "linalg/simd.h"

namespace mivid {

MiSvmEngine::MiSvmEngine(MilDataset* dataset, MiSvmOptions options)
    : RetrievalEngine(dataset), options_(options) {}

Status MiSvmEngine::Retrain() {
  if (dataset_->CountLabel(BagLabel::kRelevant) == 0 ||
      dataset_->CountLabel(BagLabel::kIrrelevant) == 0) {
    return Status::OK();
  }
  return Learn();
}

Status MiSvmEngine::Learn() {
  const auto positive = dataset_->BagsWithLabel(BagLabel::kRelevant);
  const auto negative = dataset_->BagsWithLabel(BagLabel::kIrrelevant);
  if (positive.empty() || negative.empty()) {
    return Status::FailedPrecondition(
        "MI-SVM needs at least one relevant and one irrelevant bag");
  }

  // Negative side: every instance of every irrelevant bag (Eq. 4: all are
  // irrelevant). Fixed across outer iterations.
  std::vector<const MilInstance*> negatives;
  for (const MilBag* bag : negative) {
    for (const auto& inst : bag->instances) negatives.push_back(&inst);
  }
  if (negatives.empty()) {
    return Status::FailedPrecondition("irrelevant bags contain no instances");
  }

  // The negative side is fixed across outer iterations, so its SoA packing
  // is built once and reused by every round's bandwidth median below.
  PackedFeatureMatrix neg_packed;
  {
    std::vector<const Vec*> neg_points;
    neg_points.reserve(negatives.size());
    bool uniform = true;
    const size_t neg_dim = negatives[0]->features.size();
    for (const MilInstance* inst : negatives) {
      if (inst->features.size() != neg_dim) uniform = false;
      neg_points.push_back(&inst->features);
    }
    if (uniform && neg_dim > 0) {
      neg_packed = PackedFeatureMatrix::FromPoints(neg_points, neg_dim);
    }
  }

  // Witness per positive bag; -1 in the first round means "use the bag
  // mean as a synthetic positive exemplar" (the original MI-SVM
  // initialization), after which real instances take over.
  std::vector<int> witness(positive.size(), -1);
  std::vector<Vec> bag_means(positive.size());
  for (size_t b = 0; b < positive.size(); ++b) {
    const auto& instances = positive[b]->instances;
    if (instances.empty()) continue;
    Vec mean(instances[0].features.size(), 0.0);
    for (const auto& inst : instances) {
      for (size_t d = 0; d < mean.size(); ++d) mean[d] += inst.features[d];
    }
    for (double& v : mean) v /= static_cast<double>(instances.size());
    bag_means[b] = std::move(mean);
  }

  std::optional<BinarySvmModel> model;
  int outer = 0;
  for (; outer < options_.max_outer_iterations; ++outer) {
    // Assemble the training set for this round.
    std::vector<Vec> points;
    std::vector<int> labels;
    for (size_t b = 0; b < positive.size(); ++b) {
      if (positive[b]->instances.empty()) continue;
      points.push_back(witness[b] < 0
                           ? bag_means[b]
                           : positive[b]
                                 ->instances[static_cast<size_t>(witness[b])]
                                 .features);
      labels.push_back(1);
    }
    for (const MilInstance* inst : negatives) {
      points.push_back(inst->features);
      labels.push_back(-1);
    }
    if (points.empty() || labels.front() != 1) {
      return Status::FailedPrecondition("relevant bags contain no instances");
    }

    BinarySvmOptions svm_options = options_.svm;
    if (options_.auto_sigma &&
        svm_options.kernel.type == KernelType::kRbf && points.size() >= 2) {
      // Bandwidth from the between-class distance scale: the kernel must
      // resolve the positive-negative margin, not the within-class spread.
      std::vector<double> dists;
      std::vector<double> d2(negatives.size());
      const SimdOpsTable& ops = SimdOps();
      for (size_t i = 0; i < points.size(); ++i) {
        if (labels[i] != 1) continue;
        if (!neg_packed.empty() && points[i].size() == neg_packed.dim()) {
          // One SIMD row against the packed negatives; the negatives occupy
          // the tail of `points` in the same order, so the push order (and
          // every distance, bit-for-bit) matches the pairwise loop.
          ops.direct_d2_row(points[i].data(), neg_packed.dim(),
                            neg_packed.data(), neg_packed.stride(),
                            negatives.size(), d2.data());
          for (size_t j = 0; j < negatives.size(); ++j) {
            dists.push_back(std::sqrt(d2[j]));
          }
        } else {
          for (size_t j = 0; j < points.size(); ++j) {
            if (labels[j] != -1) continue;
            dists.push_back(std::sqrt(SquaredDistance(points[i], points[j])));
          }
        }
      }
      if (!dists.empty()) {
        std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                         dists.end());
        const double median = dists[dists.size() / 2];
        if (median > 1e-9) {
          svm_options.kernel.sigma = options_.sigma_scale * median;
        }
      }
    }

    Result<BinarySvmModel> trained =
        BinarySvmTrainer(svm_options).Train(points, labels);
    if (!trained.ok()) return trained.status();
    model = std::move(trained).value();

    // Re-select witnesses; stop when stable.
    bool changed = false;
    for (size_t b = 0; b < positive.size(); ++b) {
      const auto& instances = positive[b]->instances;
      if (instances.empty()) continue;
      int best = witness[b];
      double best_value = -1e300;
      for (size_t i = 0; i < instances.size(); ++i) {
        const double v = model->DecisionValue(instances[i].features);
        if (v > best_value) {
          best_value = v;
          best = static_cast<int>(i);
        }
      }
      if (best != witness[b]) {
        witness[b] = best;
        changed = true;
      }
    }
    if (!changed) {
      ++outer;
      break;
    }
  }

  model_ = std::move(model);
  last_outer_iterations_ = outer;
  return Status::OK();
}

std::vector<ScoredBag> MiSvmEngine::Rank() const {
  std::vector<ScoredBag> ranking;
  if (!model_) return ranking;
  ranking.reserve(dataset_->size());
  for (const auto& bag : dataset_->bags()) {
    double best = -1e300;
    for (const auto& inst : bag.instances) {
      best = std::max(best, model_->DecisionValue(inst.features));
    }
    ranking.push_back({bag.id, bag.empty() ? -1e300 : best});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace mivid

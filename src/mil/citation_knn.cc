#include "mil/citation_knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "linalg/simd.h"

namespace mivid {

namespace {

/// BagToBagDistance over the packed corpus: one SIMD distance row per
/// query instance instead of an instance-pair double loop. The min/max
/// folds run in the same instance order as the Vec formula and
/// direct_d2_row matches SquaredDistance bit-for-bit, so the result is
/// identical. `scratch` must hold at least the larger bag's instance
/// count.
double PackedBagDistance(const MilBag& a, size_t a_begin, const MilBag& b,
                         size_t b_begin, const PackedFeatureMatrix& feat,
                         BagDistance distance, double* scratch) {
  if (a.instances.empty() || b.instances.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const SimdOpsTable& ops = SimdOps();
  auto directed_min = [&](const MilBag& from, const MilBag& to,
                          size_t to_begin, bool take_max) {
    double result = take_max ? 0.0 : 1e300;
    const size_t to_count = to.instances.size();
    for (const auto& x : from.instances) {
      ops.direct_d2_row(x.features.data(), feat.dim(),
                        feat.data() + to_begin, feat.stride(), to_count,
                        scratch);
      double nearest = 1e300;
      for (size_t y = 0; y < to_count; ++y) {
        nearest = std::min(nearest, scratch[y]);
      }
      result = take_max ? std::max(result, nearest)
                        : std::min(result, nearest);
    }
    return result;
  };
  if (distance == BagDistance::kMinimalHausdorff) {
    return std::sqrt(directed_min(a, b, b_begin, /*take_max=*/false));
  }
  return std::sqrt(std::max(directed_min(a, b, b_begin, /*take_max=*/true),
                            directed_min(b, a, a_begin, /*take_max=*/true)));
}

}  // namespace

double BagToBagDistance(const MilBag& a, const MilBag& b,
                        BagDistance distance) {
  if (a.instances.empty() || b.instances.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  auto directed_min = [](const MilBag& from, const MilBag& to,
                         bool take_max) {
    double result = take_max ? 0.0 : 1e300;
    for (const auto& x : from.instances) {
      double nearest = 1e300;
      for (const auto& y : to.instances) {
        if (x.features.size() != y.features.size()) continue;
        nearest = std::min(nearest, SquaredDistance(x.features, y.features));
      }
      result = take_max ? std::max(result, nearest)
                        : std::min(result, nearest);
    }
    return result;
  };
  if (distance == BagDistance::kMinimalHausdorff) {
    return std::sqrt(directed_min(a, b, /*take_max=*/false));
  }
  return std::sqrt(std::max(directed_min(a, b, /*take_max=*/true),
                            directed_min(b, a, /*take_max=*/true)));
}

CitationKnnEngine::CitationKnnEngine(MilDataset* dataset,
                                     CitationKnnOptions options)
    : RetrievalEngine(dataset), options_(options) {}

Status CitationKnnEngine::Retrain() {
  if (dataset_->CountLabel(BagLabel::kRelevant) == 0) return Status::OK();
  return Learn();
}

Status CitationKnnEngine::Learn() {
  labeled_.clear();
  for (const auto& bag : dataset_->bags()) {
    if (bag.label != BagLabel::kUnlabeled && !bag.empty()) {
      labeled_.push_back(&bag);
    }
  }
  size_t relevant = 0;
  for (const MilBag* bag : labeled_) {
    relevant += bag->label == BagLabel::kRelevant ? 1 : 0;
  }
  if (relevant == 0) {
    labeled_.clear();
    return Status::FailedPrecondition(
        "citation-kNN needs at least one relevant labeled bag");
  }
  return Status::OK();
}

std::vector<ScoredBag> CitationKnnEngine::Rank() const {
  std::vector<ScoredBag> ranking;
  if (labeled_.empty()) return ranking;

  // Pairwise distances query-bag -> labeled bag.
  const size_t n = dataset_->size();
  const size_t m = labeled_.size();
  std::vector<std::vector<double>> dist(n, std::vector<double>(m));
  const auto packed = dataset_->EnsurePacked();
  if (packed->valid) {
    // Labeled bags point into the dataset, so their packed slice is found
    // by index; rows of the matrix are independent.
    const MilBag* base = dataset_->bags().data();
    size_t max_count = 0;
    for (const auto& bag : dataset_->bags()) {
      max_count = std::max(max_count, bag.instances.size());
    }
    ParallelFor(n, /*grain=*/1, [&](size_t qb, size_t qe) {
      std::vector<double> scratch(max_count);
      for (size_t q = qb; q < qe; ++q) {
        for (size_t l = 0; l < m; ++l) {
          const size_t li = static_cast<size_t>(labeled_[l] - base);
          dist[q][l] = PackedBagDistance(
              dataset_->bag(q), packed->bag_begin[q], *labeled_[l],
              packed->bag_begin[li], packed->features, options_.distance,
              scratch.data());
        }
      }
    });
  } else {
    for (size_t q = 0; q < n; ++q) {
      for (size_t l = 0; l < m; ++l) {
        dist[q][l] = BagToBagDistance(dataset_->bag(q), *labeled_[l],
                                      options_.distance);
      }
    }
  }

  // Citers: labeled bag l cites query q when q is among l's C nearest
  // query bags (rank computed over all bags).
  const size_t c = static_cast<size_t>(std::max(1, options_.citers));
  std::vector<std::vector<size_t>> citers_of(n);
  for (size_t l = 0; l < m; ++l) {
    std::vector<size_t> order(n);
    for (size_t q = 0; q < n; ++q) order[q] = q;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return dist[x][l] < dist[y][l];
    });
    for (size_t rank = 0; rank < c && rank < n; ++rank) {
      citers_of[order[rank]].push_back(l);
    }
  }

  const size_t r = static_cast<size_t>(std::max(1, options_.references));
  ranking.reserve(n);
  for (size_t q = 0; q < n; ++q) {
    // References: the R nearest labeled bags.
    std::vector<size_t> order(m);
    for (size_t l = 0; l < m; ++l) order[l] = l;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return dist[q][x] < dist[q][y];
    });
    double pos = 0, total = 0;
    for (size_t rank = 0; rank < r && rank < m; ++rank) {
      pos += labeled_[order[rank]]->label == BagLabel::kRelevant ? 1 : 0;
      ++total;
    }
    for (size_t l : citers_of[q]) {
      pos += labeled_[l]->label == BagLabel::kRelevant ? 1 : 0;
      ++total;
    }
    // Tie-break equal vote fractions by proximity to the nearest relevant
    // reference (smooth, keeps the ranking informative).
    double nearest_rel = 1e300;
    for (size_t l = 0; l < m; ++l) {
      if (labeled_[l]->label == BagLabel::kRelevant) {
        nearest_rel = std::min(nearest_rel, dist[q][l]);
      }
    }
    const double vote = total > 0 ? pos / total : 0.0;
    ranking.push_back(
        {dataset_->bag(q).id, vote - 1e-3 * std::tanh(nearest_rel)});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace mivid

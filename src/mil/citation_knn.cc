#include "mil/citation_knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mivid {

double BagToBagDistance(const MilBag& a, const MilBag& b,
                        BagDistance distance) {
  if (a.instances.empty() || b.instances.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  auto directed_min = [](const MilBag& from, const MilBag& to,
                         bool take_max) {
    double result = take_max ? 0.0 : 1e300;
    for (const auto& x : from.instances) {
      double nearest = 1e300;
      for (const auto& y : to.instances) {
        if (x.features.size() != y.features.size()) continue;
        nearest = std::min(nearest, SquaredDistance(x.features, y.features));
      }
      result = take_max ? std::max(result, nearest)
                        : std::min(result, nearest);
    }
    return result;
  };
  if (distance == BagDistance::kMinimalHausdorff) {
    return std::sqrt(directed_min(a, b, /*take_max=*/false));
  }
  return std::sqrt(std::max(directed_min(a, b, /*take_max=*/true),
                            directed_min(b, a, /*take_max=*/true)));
}

CitationKnnEngine::CitationKnnEngine(MilDataset* dataset,
                                     CitationKnnOptions options)
    : RetrievalEngine(dataset), options_(options) {}

Status CitationKnnEngine::Retrain() {
  if (dataset_->CountLabel(BagLabel::kRelevant) == 0) return Status::OK();
  return Learn();
}

Status CitationKnnEngine::Learn() {
  labeled_.clear();
  for (const auto& bag : dataset_->bags()) {
    if (bag.label != BagLabel::kUnlabeled && !bag.empty()) {
      labeled_.push_back(&bag);
    }
  }
  size_t relevant = 0;
  for (const MilBag* bag : labeled_) {
    relevant += bag->label == BagLabel::kRelevant ? 1 : 0;
  }
  if (relevant == 0) {
    labeled_.clear();
    return Status::FailedPrecondition(
        "citation-kNN needs at least one relevant labeled bag");
  }
  return Status::OK();
}

std::vector<ScoredBag> CitationKnnEngine::Rank() const {
  std::vector<ScoredBag> ranking;
  if (labeled_.empty()) return ranking;

  // Pairwise distances query-bag -> labeled bag.
  const size_t n = dataset_->size();
  const size_t m = labeled_.size();
  std::vector<std::vector<double>> dist(n, std::vector<double>(m));
  for (size_t q = 0; q < n; ++q) {
    for (size_t l = 0; l < m; ++l) {
      dist[q][l] = BagToBagDistance(dataset_->bag(q), *labeled_[l],
                                    options_.distance);
    }
  }

  // Citers: labeled bag l cites query q when q is among l's C nearest
  // query bags (rank computed over all bags).
  const size_t c = static_cast<size_t>(std::max(1, options_.citers));
  std::vector<std::vector<size_t>> citers_of(n);
  for (size_t l = 0; l < m; ++l) {
    std::vector<size_t> order(n);
    for (size_t q = 0; q < n; ++q) order[q] = q;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return dist[x][l] < dist[y][l];
    });
    for (size_t rank = 0; rank < c && rank < n; ++rank) {
      citers_of[order[rank]].push_back(l);
    }
  }

  const size_t r = static_cast<size_t>(std::max(1, options_.references));
  ranking.reserve(n);
  for (size_t q = 0; q < n; ++q) {
    // References: the R nearest labeled bags.
    std::vector<size_t> order(m);
    for (size_t l = 0; l < m; ++l) order[l] = l;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return dist[q][x] < dist[q][y];
    });
    double pos = 0, total = 0;
    for (size_t rank = 0; rank < r && rank < m; ++rank) {
      pos += labeled_[order[rank]]->label == BagLabel::kRelevant ? 1 : 0;
      ++total;
    }
    for (size_t l : citers_of[q]) {
      pos += labeled_[l]->label == BagLabel::kRelevant ? 1 : 0;
      ++total;
    }
    // Tie-break equal vote fractions by proximity to the nearest relevant
    // reference (smooth, keeps the ranking informative).
    double nearest_rel = 1e300;
    for (size_t l = 0; l < m; ++l) {
      if (labeled_[l]->label == BagLabel::kRelevant) {
        nearest_rel = std::min(nearest_rel, dist[q][l]);
      }
    }
    const double vote = total > 0 ? pos / total : 0.0;
    ranking.push_back(
        {dataset_->bag(q).id, vote - 1e-3 * std::tanh(nearest_rel)});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace mivid

#include "mil/diverse_density.h"

#include <algorithm>
#include <cmath>

#include "linalg/simd.h"

namespace mivid {

namespace {

constexpr double kEps = 1e-12;

/// Gaussian instance likelihood P(t|x) = exp(-gamma |x-t|^2) with
/// gamma = 1/s^2. Phrased exactly like rbf_from_d2_row (multiply by the
/// reciprocal, DetExp) so the packed row paths below and this pointwise
/// form produce bit-identical likelihoods.
double InstanceP(const Vec& x, const Vec& t, double scale) {
  const double gamma = 1.0 / (scale * scale);
  return DetExp(-(gamma * SquaredDistance(x, t)));
}

/// Likelihood row: P(t|x_j) for every instance of one packed-corpus bag.
void InstancePRow(const Vec& t, double scale, const PackedFeatureMatrix& feat,
                  size_t begin, size_t count, double* d2, double* p) {
  const SimdOpsTable& ops = SimdOps();
  ops.direct_d2_row(t.data(), feat.dim(), feat.data() + begin, feat.stride(),
                    count, d2);
  ops.rbf_from_d2_row(1.0 / (scale * scale), d2, count, p);
}

}  // namespace

DiverseDensityEngine::DiverseDensityEngine(const MilDataset* dataset,
                                           DiverseDensityOptions options)
    : dataset_(dataset), options_(options) {}

double DiverseDensityEngine::LogDd(
    const Vec& t, const std::vector<const MilBag*>& positive,
    const std::vector<const MilBag*>& negative) const {
  const auto packed = dataset_->EnsurePacked();
  std::vector<double> d2, p;
  const MilBag* base = dataset_->bags().data();
  // Likelihoods per bag: one SIMD row when the corpus packs, the pointwise
  // form otherwise; the log folds below see identical values either way.
  auto likelihoods = [&](const MilBag* bag) -> const double* {
    const size_t count = bag->instances.size();
    d2.resize(count);
    p.resize(count);
    if (packed->valid) {
      const size_t bi = static_cast<size_t>(bag - base);
      InstancePRow(t, options_.scale, packed->features,
                   packed->bag_begin[bi], count, d2.data(), p.data());
    } else {
      for (size_t i = 0; i < count; ++i) {
        p[i] = InstanceP(bag->instances[i].features, t, options_.scale);
      }
    }
    return p.data();
  };
  double log_dd = 0.0;
  for (const MilBag* bag : positive) {
    const double* ps = likelihoods(bag);
    double log_none = 0.0;  // log prod (1 - P_i)
    for (size_t i = 0; i < bag->instances.size(); ++i) {
      log_none += std::log(std::max(1.0 - ps[i], kEps));
    }
    const double p_bag = 1.0 - std::exp(log_none);
    log_dd += std::log(std::max(p_bag, kEps));
  }
  for (const MilBag* bag : negative) {
    const double* ps = likelihoods(bag);
    for (size_t i = 0; i < bag->instances.size(); ++i) {
      log_dd += std::log(std::max(1.0 - ps[i], kEps));
    }
  }
  return log_dd;
}

Status DiverseDensityEngine::Learn() {
  const auto positive = dataset_->BagsWithLabel(BagLabel::kRelevant);
  const auto negative = dataset_->BagsWithLabel(BagLabel::kIrrelevant);
  if (positive.empty()) {
    return Status::FailedPrecondition(
        "diverse density needs at least one relevant bag");
  }

  // Candidate starts: instances of the positive bags.
  std::vector<const Vec*> starts;
  for (const MilBag* bag : positive) {
    for (const auto& inst : bag->instances) starts.push_back(&inst.features);
  }
  if (starts.empty()) {
    return Status::FailedPrecondition("relevant bags contain no instances");
  }
  if (starts.size() > options_.max_starts) {
    // Deterministic stride subsample.
    std::vector<const Vec*> sampled;
    const double step =
        static_cast<double>(starts.size()) / options_.max_starts;
    for (size_t i = 0; i < options_.max_starts; ++i) {
      sampled.push_back(starts[static_cast<size_t>(i * step)]);
    }
    starts.swap(sampled);
  }

  const double s2 = options_.scale * options_.scale;
  Vec best_t;
  double best_obj = -1e300;

  for (const Vec* start : starts) {
    Vec t = *start;

    if (!options_.use_em) {
      // Plain DD: gradient ascent on log DD.
      for (int step = 0; step < options_.max_gradient_steps; ++step) {
        Vec grad(t.size(), 0.0);
        for (const MilBag* bag : positive) {
          // p_bag = 1 - prod(1 - P_i); gradient via the noisy-or.
          double log_none = 0.0;
          std::vector<double> ps(bag->instances.size());
          for (size_t i = 0; i < bag->instances.size(); ++i) {
            ps[i] = InstanceP(bag->instances[i].features, t, options_.scale);
            log_none += std::log(std::max(1.0 - ps[i], kEps));
          }
          const double none = std::exp(log_none);
          const double p_bag = std::max(1.0 - none, kEps);
          for (size_t i = 0; i < bag->instances.size(); ++i) {
            const double outer =
                none / std::max(1.0 - ps[i], kEps) / p_bag;  // d logp / dP_i
            const Vec& x = bag->instances[i].features;
            for (size_t d = 0; d < t.size(); ++d) {
              grad[d] += outer * ps[i] * 2.0 * (x[d] - t[d]) / s2;
            }
          }
        }
        for (const MilBag* bag : negative) {
          for (const auto& inst : bag->instances) {
            const double p = InstanceP(inst.features, t, options_.scale);
            const double outer = -p / std::max(1.0 - p, kEps);
            for (size_t d = 0; d < t.size(); ++d) {
              grad[d] += outer * 2.0 * (inst.features[d] - t[d]) / s2;
            }
          }
        }
        double gnorm = Norm(grad);
        if (gnorm < 1e-9) break;
        // Trust-region step: cap the move so the ascent cannot diverge.
        double lr_step = options_.learning_rate;
        const double kMaxStep = 0.1;
        if (lr_step * gnorm > kMaxStep) lr_step = kMaxStep / gnorm;
        for (size_t d = 0; d < t.size(); ++d) {
          t[d] += lr_step * grad[d];
        }
      }
    } else {
      // EM-DD: alternate responsible-instance selection and single-
      // instance likelihood maximization.
      for (int em = 0; em < options_.max_em_iterations; ++em) {
        // E-step: responsible instance per positive bag.
        std::vector<const Vec*> responsible;
        for (const MilBag* bag : positive) {
          const Vec* best_inst = nullptr;
          double best_p = -1.0;
          for (const auto& inst : bag->instances) {
            const double p = InstanceP(inst.features, t, options_.scale);
            if (p > best_p) {
              best_p = p;
              best_inst = &inst.features;
            }
          }
          if (best_inst != nullptr) responsible.push_back(best_inst);
        }
        // M-step objective: sum log P(t|x_r) + sum_neg log(1 - P).
        // The positive part's optimum ignores negatives' pull only weakly;
        // run a few gradient steps on the joint objective.
        Vec prev_t = t;
        for (int step = 0; step < options_.max_gradient_steps / 4; ++step) {
          Vec grad(t.size(), 0.0);
          for (const Vec* x : responsible) {
            // d log P / dt = 2 (x - t) / s^2.
            for (size_t d = 0; d < t.size(); ++d) {
              grad[d] += 2.0 * ((*x)[d] - t[d]) / s2;
            }
          }
          for (const MilBag* bag : negative) {
            for (const auto& inst : bag->instances) {
              const double p = InstanceP(inst.features, t, options_.scale);
              const double outer = -p / std::max(1.0 - p, kEps);
              for (size_t d = 0; d < t.size(); ++d) {
                grad[d] += outer * 2.0 * (inst.features[d] - t[d]) / s2;
              }
            }
          }
          const double gnorm = Norm(grad);
          if (gnorm < 1e-9) break;
          double lr_step = options_.learning_rate;
          const double kMaxStep = 0.1;
          if (lr_step * gnorm > kMaxStep) lr_step = kMaxStep / gnorm;
          for (size_t d = 0; d < t.size(); ++d) {
            t[d] += lr_step * grad[d];
          }
        }
        if (std::sqrt(SquaredDistance(prev_t, t)) < 1e-6) break;
      }
    }

    const double obj = LogDd(t, positive, negative);
    if (obj > best_obj) {
      best_obj = obj;
      best_t = t;
    }
  }

  concept_ = std::move(best_t);
  best_log_dd_ = best_obj;
  return Status::OK();
}

std::vector<ScoredBag> DiverseDensityEngine::Rank() const {
  std::vector<ScoredBag> ranking;
  if (!concept_) return ranking;
  ranking.reserve(dataset_->size());
  const auto packed = dataset_->EnsurePacked();
  std::vector<double> d2, p;
  for (size_t b = 0; b < dataset_->size(); ++b) {
    const MilBag& bag = dataset_->bag(b);
    double best = 0.0;
    if (packed->valid) {
      const size_t count = bag.instances.size();
      d2.resize(count);
      p.resize(count);
      InstancePRow(*concept_, options_.scale, packed->features,
                   packed->bag_begin[b], count, d2.data(), p.data());
      for (size_t i = 0; i < count; ++i) best = std::max(best, p[i]);
    } else {
      for (const auto& inst : bag.instances) {
        best = std::max(best, InstanceP(inst.features, *concept_,
                                        options_.scale));
      }
    }
    ranking.push_back({bag.id, best});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace mivid

// Multiple Instance Learning primitives (paper Sec. 1 and 5.1).
//
// A bag (Video Sequence) is labeled relevant iff at least one of its
// instances (Trajectory Sequences) is relevant (Eq. 3); it is irrelevant
// iff all instances are irrelevant (Eq. 4). Relevance feedback supplies
// bag labels; instance labels stay latent.

#ifndef MIVID_MIL_BAG_H_
#define MIVID_MIL_BAG_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace mivid {

/// Feedback state of a bag.
enum class BagLabel : uint8_t {
  kUnlabeled = 0,
  kRelevant = 1,
  kIrrelevant = 2,
};

/// One instance: a feature vector plus its identity within the corpus.
///
/// Two feature views coexist (paper Sec. 5.3 vs 6.2): `features` is the
/// [0,1]-normalized flattened TS vector the One-class SVM learns from;
/// `raw_features` keeps the unnormalized values used by the paper's
/// square-sum heuristic and by the weighted-RF baseline, whose
/// inverse-std-dev weights are defined over raw feature scales.
struct MilInstance {
  int bag_id = -1;
  int instance_id = -1;  ///< unique within the bag (here: track id)
  Vec features;          ///< normalized (SVM space)
  Vec raw_features;      ///< unnormalized (heuristic/baseline space)
};

/// One bag of instances.
struct MilBag {
  int id = -1;
  BagLabel label = BagLabel::kUnlabeled;
  std::vector<MilInstance> instances;

  bool empty() const { return instances.empty(); }
};

/// Eq. 3/4: derives the bag label implied by known instance labels
/// (true = relevant). Returns kRelevant when any instance is relevant,
/// kIrrelevant when all are irrelevant, for empty input kIrrelevant.
BagLabel BagLabelFromInstances(const std::vector<bool>& instance_relevant);

}  // namespace mivid

#endif  // MIVID_MIL_BAG_H_

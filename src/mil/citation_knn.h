// Citation-kNN (Wang & Zucker, ICML 2000) — the lazy-learning approach to
// MIL the paper surveys as [10], implemented as an additional baseline.
//
// Bags are compared with a Hausdorff distance: the maximal form
//   d(A, B) = max( max_a min_b |a-b|, max_b min_a |a-b| )
// or Wang & Zucker's minimal form min_a min_b |a-b|. For drug-activity
// style data the minimal form excels, but in a retrieval corpus where
// every bag shares near-identical "normal traffic" instances it collapses
// to the distance between those common instances and stops discriminating
// — so the maximal form is the default here (the minimal form remains
// available and is exercised by tests). A bag is scored by combining its
// "references" (the labeled bags nearest to it) and its "citers" (labeled
// bags that consider it a near neighbor).

#ifndef MIVID_MIL_CITATION_KNN_H_
#define MIVID_MIL_CITATION_KNN_H_

#include "common/status.h"
#include "mil/dataset.h"
#include "retrieval/engine.h"
#include "retrieval/heuristic.h"

namespace mivid {

/// Bag-to-bag distance flavors.
enum class BagDistance : uint8_t {
  kMinimalHausdorff = 0,  ///< min over instance pairs (Wang & Zucker)
  kMaximalHausdorff = 1,  ///< classic symmetric Hausdorff
};

/// Citation-kNN configuration.
struct CitationKnnOptions {
  int references = 3;  ///< R nearest labeled bags
  int citers = 5;      ///< labeled bags are citers of their C nearest
  BagDistance distance = BagDistance::kMaximalHausdorff;
};

/// Computes the configured bag distance.
double BagToBagDistance(const MilBag& a, const MilBag& b,
                        BagDistance distance);

/// Lazy MIL ranker: no training phase beyond caching the labeled bags
/// (registry key "cknn").
class CitationKnnEngine : public RetrievalEngine {
 public:
  /// `dataset` must outlive the engine.
  CitationKnnEngine(MilDataset* dataset, CitationKnnOptions options);

  std::string_view name() const override { return "cknn"; }

  /// Caches the current labeled bags. Needs >= 1 relevant labeled bag.
  Status Learn();

  /// Cold-start-aware Learn(): a no-op until a relevant label exists.
  Status Retrain() override;

  bool trained() const override { return !labeled_.empty(); }

  /// Ranks all bags by the relevant fraction among references + citers.
  std::vector<ScoredBag> Rank() const override;

 private:
  CitationKnnOptions options_;
  std::vector<const MilBag*> labeled_;
};

}  // namespace mivid

#endif  // MIVID_MIL_CITATION_KNN_H_

// Multi-object tracker: associates per-frame blobs into vehicle tracks.
//
// Implements the tracking phase of the paper's substrate [20]: vehicle
// segments are linked across successive frames by centroid proximity (with
// a constant-velocity prediction), yielding per-vehicle trajectories.

#ifndef MIVID_TRACK_TRACKER_H_
#define MIVID_TRACK_TRACKER_H_

#include <vector>

#include "segment/blob.h"
#include "trajectory/trajectory.h"

namespace mivid {

/// Tracker configuration.
struct TrackerOptions {
  double max_match_distance = 25.0;  ///< gating radius for association, px
  double duplicate_radius = 12.0;  ///< unmatched detections this close to a
                                   ///< live track are split-blob artifacts;
                                   ///< suppressed instead of spawning tracks
  int max_misses = 4;     ///< drop a track after this many missed frames
  int min_track_length = 3;  ///< discard shorter tracks on Finish()
  bool use_hungarian = true; ///< optimal assignment (vs. greedy)
};

/// Online tracker; feed blobs frame by frame, then Finish().
class Tracker {
 public:
  explicit Tracker(TrackerOptions options = {});

  /// Associates `blobs` (detected at `frame`) with live tracks; spawns new
  /// tracks for unmatched detections and retires stale tracks.
  void Observe(int frame, const std::vector<Blob>& blobs);

  /// Number of currently live (non-retired) tracks.
  size_t live_count() const { return live_.size(); }

  /// Retires all live tracks and returns every track (length-filtered),
  /// ordered by track id. The tracker can be reused afterwards.
  std::vector<Track> Finish();

 private:
  struct LiveTrack {
    Track track;
    Point2 velocity;   // EMA of centroid displacement per frame
    int last_frame = -1;
    int misses = 0;
  };

  Point2 Predict(const LiveTrack& t, int frame) const;

  TrackerOptions options_;
  int next_id_ = 0;
  std::vector<LiveTrack> live_;
  std::vector<Track> finished_;
};

}  // namespace mivid

#endif  // MIVID_TRACK_TRACKER_H_

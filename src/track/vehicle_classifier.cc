#include "track/vehicle_classifier.h"

#include <cmath>
#include <limits>
#include <map>

namespace mivid {

Vec BlobShapeDescriptor(const Blob& blob) {
  const double w = std::max(1.0, blob.mbr.Width());
  const double h = std::max(1.0, blob.mbr.Height());
  const double mbr_area = w * h;
  return {w, h, static_cast<double>(blob.area), w / h,
          static_cast<double>(blob.area) / mbr_area};
}

Result<VehicleClassifier> VehicleClassifier::Train(
    const std::vector<LabeledBlob>& examples, size_t num_components) {
  if (examples.size() < 2) {
    return Status::InvalidArgument(
        "need at least 2 labeled blobs to train the classifier");
  }
  std::vector<Vec> rows;
  rows.reserve(examples.size());
  for (const auto& ex : examples) rows.push_back(BlobShapeDescriptor(ex.blob));

  VehicleClassifier classifier;
  MIVID_ASSIGN_OR_RETURN(classifier.pca_,
                         PcaModel::Fit(rows, num_components));

  // Per-class centroid in PCA space.
  std::map<VehicleType, std::pair<Vec, size_t>> acc;
  for (size_t i = 0; i < examples.size(); ++i) {
    const Vec p = classifier.pca_.Project(rows[i]);
    auto& [sum, n] = acc[examples[i].type];
    if (sum.empty()) sum.assign(p.size(), 0.0);
    for (size_t d = 0; d < p.size(); ++d) sum[d] += p[d];
    ++n;
  }
  for (auto& [type, entry] : acc) {
    auto& [sum, n] = entry;
    for (double& v : sum) v /= static_cast<double>(n);
    classifier.centroids_.emplace_back(type, sum);
  }
  return classifier;
}

double VehicleClassifier::ClassifyWithDistance(const Blob& blob,
                                               VehicleType* type) const {
  const Vec p = pca_.Project(BlobShapeDescriptor(blob));
  double best = std::numeric_limits<double>::infinity();
  VehicleType best_type = VehicleType::kCar;
  for (const auto& [t, centroid] : centroids_) {
    const double d = SquaredDistance(p, centroid);
    if (d < best) {
      best = d;
      best_type = t;
    }
  }
  if (type != nullptr) *type = best_type;
  return std::sqrt(best);
}

VehicleType VehicleClassifier::Classify(const Blob& blob) const {
  VehicleType type;
  ClassifyWithDistance(blob, &type);
  return type;
}

}  // namespace mivid

#include "track/assignment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

namespace mivid {

Assignment GreedyAssign(const Matrix& cost, double max_cost) {
  const size_t rows = cost.rows(), cols = cost.cols();
  Assignment assignment(rows, -1);

  std::vector<std::tuple<double, size_t, size_t>> pairs;
  pairs.reserve(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (cost.At(r, c) <= max_cost) pairs.emplace_back(cost.At(r, c), r, c);
    }
  }
  std::sort(pairs.begin(), pairs.end());

  std::vector<uint8_t> row_used(rows, 0), col_used(cols, 0);
  for (const auto& [c, r, col] : pairs) {
    (void)c;
    if (row_used[r] || col_used[col]) continue;
    row_used[r] = 1;
    col_used[col] = 1;
    assignment[r] = static_cast<int>(col);
  }
  return assignment;
}

Assignment HungarianAssign(const Matrix& cost, double max_cost) {
  const size_t rows = cost.rows(), cols = cost.cols();
  if (rows == 0 || cols == 0) return Assignment(rows, -1);

  // Pad to square with the sentinel so the classic algorithm applies.
  const size_t n = std::max(rows, cols);
  const double kBig = 1e12;
  // a[i][j], 1-indexed internally (standard O(n^3) potentials formulation).
  std::vector<std::vector<double>> a(n + 1, std::vector<double>(n + 1, kBig));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      a[r + 1][c + 1] = cost.At(r, c) <= max_cost ? cost.At(r, c) : kBig;
    }
  }

  std::vector<double> u(n + 1, 0), v(n + 1, 0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, std::numeric_limits<double>::infinity());
    std::vector<uint8_t> used(n + 1, 0);
    do {
      used[j0] = 1;
      const size_t i0 = p[j0];
      double delta = std::numeric_limits<double>::infinity();
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = a[i0][j] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Assignment assignment(rows, -1);
  for (size_t j = 1; j <= n; ++j) {
    const size_t i = p[j];
    if (i >= 1 && i <= rows && j <= cols &&
        cost.At(i - 1, j - 1) <= max_cost) {
      assignment[i - 1] = static_cast<int>(j - 1);
    }
  }
  return assignment;
}

}  // namespace mivid

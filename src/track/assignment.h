// Data-association solvers for frame-to-frame blob matching.
//
// Given a cost matrix (tracks x detections), produce a one-to-one
// assignment. Two solvers: a fast greedy matcher and the optimal Hungarian
// algorithm; the tracker uses Hungarian by default (counts are tiny).

#ifndef MIVID_TRACK_ASSIGNMENT_H_
#define MIVID_TRACK_ASSIGNMENT_H_

#include <vector>

#include "linalg/matrix.h"

namespace mivid {

/// assignment[r] = column matched to row r, or -1 if unmatched.
using Assignment = std::vector<int>;

/// Greedy matching: repeatedly takes the globally cheapest remaining pair
/// with cost <= max_cost.
Assignment GreedyAssign(const Matrix& cost, double max_cost);

/// Optimal rectangular assignment (Hungarian / Kuhn-Munkres, O(n^3)).
/// Pairs with cost > max_cost are left unmatched even if selected by the
/// optimum (they are masked to a large sentinel before solving).
Assignment HungarianAssign(const Matrix& cost, double max_cost);

}  // namespace mivid

#endif  // MIVID_TRACK_ASSIGNMENT_H_

#include "track/tracker.h"

#include <algorithm>

#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "track/assignment.h"

namespace mivid {

Tracker::Tracker(TrackerOptions options) : options_(options) {}

Point2 Tracker::Predict(const LiveTrack& t, int frame) const {
  const TrackPoint& last = t.track.points.back();
  const double dt = frame - last.frame;
  return last.centroid + t.velocity * dt;
}

void Tracker::Observe(int frame, const std::vector<Blob>& blobs) {
  MIVID_TRACE_SPAN("track/observe");
  // Build the gating cost matrix: predicted-position distance.
  const size_t nt = live_.size(), nd = blobs.size();
  Assignment assignment(nt, -1);
  if (nt > 0 && nd > 0) {
    Matrix cost(nt, nd);
    for (size_t r = 0; r < nt; ++r) {
      const Point2 predicted = Predict(live_[r], frame);
      for (size_t c = 0; c < nd; ++c) {
        cost.At(r, c) = Distance(predicted, blobs[c].centroid);
      }
    }
    assignment = options_.use_hungarian
                     ? HungarianAssign(cost, options_.max_match_distance)
                     : GreedyAssign(cost, options_.max_match_distance);
  }

  std::vector<uint8_t> detection_used(nd, 0);
  size_t matched = 0;
  for (size_t r = 0; r < nt; ++r) {
    LiveTrack& t = live_[r];
    const int c = assignment[r];
    if (c >= 0) {
      ++matched;
      detection_used[static_cast<size_t>(c)] = 1;
      const Blob& blob = blobs[static_cast<size_t>(c)];
      const TrackPoint& prev = t.track.points.back();
      const double dt = std::max(1, frame - prev.frame);
      const Point2 step = (blob.centroid - prev.centroid) * (1.0 / dt);
      // EMA velocity smooths segmentation jitter.
      t.velocity = t.velocity * 0.5 + step * 0.5;
      t.track.points.push_back(TrackPoint{frame, blob.centroid, blob.mbr});
      t.last_frame = frame;
      t.misses = 0;
    } else {
      ++t.misses;
    }
  }

  // Retire stale tracks.
  size_t retired = 0;
  for (size_t r = live_.size(); r-- > 0;) {
    if (live_[r].misses > options_.max_misses) {
      ++retired;
      finished_.push_back(std::move(live_[r].track));
      live_.erase(live_.begin() + static_cast<long>(r));
    }
  }

  // Spawn tracks for unmatched detections, unless the detection sits on
  // top of an existing track (a split blob of an already-tracked vehicle).
  size_t spawned = 0;
  for (size_t c = 0; c < nd; ++c) {
    if (detection_used[c]) continue;
    bool duplicate = false;
    for (const auto& t : live_) {
      if (Distance(t.track.points.back().centroid, blobs[c].centroid) <
          options_.duplicate_radius) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    LiveTrack t;
    t.track.id = next_id_++;
    t.track.points.push_back(TrackPoint{frame, blobs[c].centroid,
                                        blobs[c].mbr});
    t.velocity = {0, 0};
    t.last_frame = frame;
    live_.push_back(std::move(t));
    ++spawned;
  }

  MIVID_METRIC_COUNT("track/frames", 1);
  MIVID_METRIC_COUNT("track/matches", matched);
  MIVID_METRIC_COUNT("track/retired", retired);
  MIVID_METRIC_COUNT("track/spawned", spawned);
}

std::vector<Track> Tracker::Finish() {
  for (auto& t : live_) finished_.push_back(std::move(t.track));
  live_.clear();

  std::vector<Track> out;
  for (auto& t : finished_) {
    if (static_cast<int>(t.points.size()) >= options_.min_track_length) {
      out.push_back(std::move(t));
    }
  }
  finished_.clear();
  std::sort(out.begin(), out.end(),
            [](const Track& a, const Track& b) { return a.id < b.id; });
  return out;
}

}  // namespace mivid

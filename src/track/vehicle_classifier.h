// PCA-based vehicle classification (paper Sec. 3.1, ref [13]).
//
// The last phase of the tracking substrate classifies vehicle segments
// into body classes (cars, SUVs, pick-up trucks, ...). Shape descriptors
// of the segmented blob are projected onto a PCA basis fitted on labeled
// examples and classified by the nearest class centroid in PCA space.

#ifndef MIVID_TRACK_VEHICLE_CLASSIFIER_H_
#define MIVID_TRACK_VEHICLE_CLASSIFIER_H_

#include <vector>

#include "common/status.h"
#include "linalg/pca.h"
#include "segment/blob.h"
#include "trafficsim/vehicle.h"

namespace mivid {

/// Shape descriptor of a vehicle blob: [width, height, area, aspect,
/// fill-ratio (area / MBR area)].
Vec BlobShapeDescriptor(const Blob& blob);

/// A labeled training example.
struct LabeledBlob {
  Blob blob;
  VehicleType type;
};

/// Nearest-centroid classifier in PCA shape space.
class VehicleClassifier {
 public:
  /// Fits the PCA basis and per-class centroids. Requires >= 2 examples
  /// overall and >= 1 example per class that should be recognizable.
  static Result<VehicleClassifier> Train(
      const std::vector<LabeledBlob>& examples, size_t num_components = 3);

  /// Predicts the body class of a blob.
  VehicleType Classify(const Blob& blob) const;

  /// Distance to the predicted class centroid (confidence proxy; smaller
  /// is more confident).
  double ClassifyWithDistance(const Blob& blob, VehicleType* type) const;

  const PcaModel& pca() const { return pca_; }

 private:
  PcaModel pca_;
  std::vector<std::pair<VehicleType, Vec>> centroids_;  // in PCA space
};

}  // namespace mivid

#endif  // MIVID_TRACK_VEHICLE_CLASSIFIER_H_

// LiveTrackBuilder: accumulates per-frame observations into Tracks.
//
// The builder is the single source of truth for track identity in the
// streaming pipeline: the Tracks it finishes are exactly what the
// ingestor persists to the VideoDb, so batch re-extraction over the
// stored clip sees the same tracks the incremental extractor saw —
// the foundation of the streamed == batch bit-identity guarantee
// (docs/ingest.md).
//
// Identity rules:
//  * An unseen track id starts a new track at its first observation.
//  * A track with no observation for `retire_after_frames` frames is
//    retired; retirement is what lets the extractor's commit watermark
//    resolve the track's checkpoint-eligibility and move on.
//  * An observation for an already-retired id is dropped (sources must
//    not reuse ids within a clip) and reported to the caller.

#ifndef MIVID_INGEST_TRACK_BUILDER_H_
#define MIVID_INGEST_TRACK_BUILDER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "ingest/stream_types.h"
#include "trajectory/trajectory.h"

namespace mivid {

class LiveTrackBuilder {
 public:
  explicit LiveTrackBuilder(int retire_after_frames)
      : retire_after_frames_(retire_after_frames) {}

  /// What one Observe() call did.
  struct ObserveResult {
    std::vector<int> retired;  ///< track ids retired at this frame
    int late_observations = 0;  ///< observations for retired ids, dropped
  };

  /// Ingests one frame's observations. `frame` must be strictly greater
  /// than the previous call's frame.
  ObserveResult Observe(int frame, const std::vector<TrackObservation>& obs);

  /// Retires every live track and returns all of the clip's tracks in
  /// ascending id order. Resets the builder for the next clip.
  std::vector<Track> Finish();

  size_t live_count() const { return live_.size(); }
  int last_frame() const { return last_frame_; }

 private:
  const int retire_after_frames_;
  int last_frame_ = -1;
  std::map<int, Track> live_;      ///< id -> track under construction
  std::map<int, Track> finished_;  ///< retired tracks, by id
};

}  // namespace mivid

#endif  // MIVID_INGEST_TRACK_BUILDER_H_

#include "ingest/camera_ingestor.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

CameraIngestor::CameraIngestor(std::string camera_id, VideoDb* db,
                               CorpusManager* corpora,
                               const IngestOptions& options)
    : camera_id_(std::move(camera_id)),
      db_(db),
      corpora_(corpora),
      options_(options),
      builder_(std::max(1, options.retire_after_frames)),
      extractor_(options.query.features, options.query.windows),
      activity_(static_cast<size_t>(std::max(1, options.activity_window))) {}

Result<CameraIngestor::FrameResult> CameraIngestor::Observe(
    const FrameObservations& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frame.frame <= last_stream_frame_) {
    return Status::InvalidArgument(
        "ingest frames must be strictly ascending: frame " +
        std::to_string(frame.frame) + " after " +
        std::to_string(last_stream_frame_));
  }

  FrameResult result;
  // Auto-cut every clip_frames frames; a sparse stream may cross
  // several (empty) clip boundaries in one step.
  while (options_.clip_frames > 0 &&
         frame.frame - clip_begin_ >= options_.clip_frames) {
    MIVID_ASSIGN_OR_RETURN(CutResult cut, CutLocked(options_.clip_frames));
    (void)cut;
    ++result.clips_cut;
  }

  const int local = frame.frame - clip_begin_;
  extractor_.Observe(local, frame.observations);
  LiveTrackBuilder::ObserveResult observed =
      builder_.Observe(local, frame.observations);
  for (int id : observed.retired) extractor_.Retire(id);

  last_stream_frame_ = frame.frame;
  ++stats_.frames;
  stats_.observations += static_cast<int64_t>(frame.observations.size());
  stats_.late_observations += observed.late_observations;
  stats_.stream_frame = frame.frame;
  result.late_observations = observed.late_observations;

  MIVID_METRIC_COUNT("ingest/frames", 1);
  MIVID_METRIC_COUNT("ingest/observations", frame.observations.size());
  if (observed.late_observations > 0) {
    MIVID_METRIC_COUNT("ingest/late_observations",
                       observed.late_observations);
  }
  MIVID_METRIC_GAUGE_SET("ingest/lag_frames", extractor_.lag_frames());
  return result;
}

Status CameraIngestor::AddIncident(IncidentType type, int begin_frame,
                                   int end_frame,
                                   std::vector<int> vehicle_ids) {
  std::lock_guard<std::mutex> lock(mu_);
  if (begin_frame > end_frame || begin_frame < 0) {
    return Status::InvalidArgument("invalid incident frame range");
  }
  if (begin_frame < clip_begin_) {
    MIVID_METRIC_COUNT("ingest/late_incidents", 1);
    return Status::FailedPrecondition(
        "incident begins at frame " + std::to_string(begin_frame) +
        " but the stream already cut through frame " +
        std::to_string(clip_begin_));
  }
  IncidentRecord incident;
  incident.type = type;
  incident.begin_frame = begin_frame;
  incident.end_frame = end_frame;
  incident.vehicle_ids = std::move(vehicle_ids);
  pending_incidents_.push_back(std::move(incident));
  return Status::OK();
}

Result<CameraIngestor::CutResult> CameraIngestor::Cut() {
  std::lock_guard<std::mutex> lock(mu_);
  const int observed = last_stream_frame_ - clip_begin_ + 1;
  if (observed <= 0) return CutResult{};  // nothing streamed: no clip
  return CutLocked(observed);
}

Result<CameraIngestor::CutResult> CameraIngestor::CutLocked(
    int total_frames) {
  MIVID_TRACE_SPAN("ingest/cut");
  std::vector<Track> tracks = builder_.Finish();
  IncrementalClipExtractor::Output extracted =
      extractor_.Finish(total_frames);

  // Incidents covering this clip, rebased to clip-local frames. An
  // annotation spanning the cut contributes to both clips.
  const int clip_end = clip_begin_ + total_frames;  // exclusive
  std::vector<IncidentRecord> clip_incidents;
  std::vector<IncidentRecord> still_pending;
  for (const IncidentRecord& incident : pending_incidents_) {
    if (incident.begin_frame < clip_end &&
        incident.end_frame >= clip_begin_) {
      IncidentRecord local = incident;
      local.begin_frame = std::max(0, incident.begin_frame - clip_begin_);
      local.end_frame =
          std::min(total_frames - 1, incident.end_frame - clip_begin_);
      clip_incidents.push_back(std::move(local));
    }
    if (incident.end_frame >= clip_end) still_pending.push_back(incident);
  }

  CutResult result;
  result.total_frames = total_frames;

  if (tracks.empty() && clip_incidents.empty()) {
    // Nothing happened: skip the empty clip entirely.
    pending_incidents_ = std::move(still_pending);
    clip_begin_ += total_frames;
    return result;
  }

  ClipInfo info;
  info.camera_id = camera_id_;
  info.total_frames = total_frames;
  info.scenario = "stream";
  MIVID_ASSIGN_OR_RETURN(int clip_id,
                         db_->IngestClip(info, tracks, clip_incidents));

  ClipExtraction clip;
  clip.clip_id = clip_id;
  clip.total_frames = total_frames;
  clip.windows = std::move(extracted.windows);
  clip.scaler = std::move(extracted.scaler);
  clip.incidents = std::move(clip_incidents);
  const size_t bags = clip.windows.size();
  for (const VideoSequence& vs : clip.windows) {
    activity_.Observe(static_cast<double>(vs.ts.size()));
  }
  MIVID_RETURN_IF_ERROR(corpora_->Append(camera_id_, std::move(clip)));

  pending_incidents_ = std::move(still_pending);
  clip_begin_ += total_frames;
  ++stats_.clips;
  stats_.bags += static_cast<int64_t>(bags);
  result.clip_id = clip_id;
  result.bags_staged = bags;

  MIVID_METRIC_COUNT("ingest/clips_cut", 1);
  MIVID_METRIC_COUNT("ingest/bags_staged", bags);
  MIVID_METRIC_GAUGE_SET("ingest/window_ts_mean", activity_.Mean());
  MIVID_METRIC_GAUGE_SET("ingest/window_ts_max",
                         activity_.empty() ? 0.0 : activity_.Max());
  return result;
}

CameraIngestor::Stats CameraIngestor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.lag_frames = extractor_.lag_frames();
  s.live_tracks = builder_.live_count();
  s.window_ts_mean = activity_.Mean();
  s.window_ts_max = activity_.empty() ? 0.0 : activity_.Max();
  return s;
}

}  // namespace mivid

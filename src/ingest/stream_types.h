// Wire-facing types of the streaming ingestion pipeline (docs/ingest.md).
//
// A live camera source (trafficsim replay, the `ingest` NDJSON command,
// or a real tracker front end) delivers per-frame track observations.
// The pipeline segments the stream into clips, extracts window features
// incrementally, and appends the resulting bags to the camera's corpus
// tail (serve/corpus_manager.h) for the next epoch publish.

#ifndef MIVID_INGEST_STREAM_TYPES_H_
#define MIVID_INGEST_STREAM_TYPES_H_

#include <vector>

#include "db/query_engine.h"
#include "geometry/geometry.h"
#include "trafficsim/incident.h"

namespace mivid {

/// One tracked object seen in one frame.
struct TrackObservation {
  int track_id = -1;
  Point2 centroid;
  BBox bbox;
};

/// Everything a camera saw in one frame. Frames must arrive in strictly
/// ascending order within a clip.
struct FrameObservations {
  int frame = 0;  ///< clip-local frame index (>= 0)
  std::vector<TrackObservation> observations;
};

/// Streaming pipeline configuration. Feature/window parameters come
/// from the serving QueryOptions so streamed bags live in the same
/// feature space as batch-extracted ones.
struct IngestOptions {
  QueryOptions query;

  /// A track with no observation for this many frames is retired: its
  /// eligibility (>= 2 checkpoints) resolves and the commit watermark
  /// can pass it. Later observations for a retired id are dropped
  /// (counted in ingest/late_observations). Must exceed the source's
  /// worst observation gap for streamed == batch equality.
  int retire_after_frames = 25;

  /// Auto-cut the stream into clips of this many frames; <= 0 means
  /// clips end only on explicit Cut() (the `ingest` command's "cut").
  int clip_frames = 0;

  /// Rolling activity profile depth (materialized windows) for the
  /// ingest gauges; see event/window_agg.h RollingStats.
  int activity_window = 64;
};

}  // namespace mivid

#endif  // MIVID_INGEST_STREAM_TYPES_H_

// CameraIngestor: one live camera's streaming pipeline.
//
// Accepts per-frame observations (the `ingest` NDJSON command,
// trafficsim replay, or a tracker front end), segments the stream into
// clips, and on every cut:
//   1. persists the finished clip to the VideoDb (so a batch rebuild of
//      the camera sees exactly what the stream saw),
//   2. stages the incrementally extracted windows into the camera's
//      corpus tail (CorpusManager::Append) for the next epoch publish.
//
// Incident annotations arrive separately (AddIncident, absolute stream
// frames) and are clipped to the covering clip(s) at cut time — they
// become the stored ground truth the feedback oracle labels bags with.
//
// Thread-safe; one ingestor per camera, streams must deliver frames in
// strictly ascending order.

#ifndef MIVID_INGEST_CAMERA_INGESTOR_H_
#define MIVID_INGEST_CAMERA_INGESTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "db/video_db.h"
#include "event/window_agg.h"
#include "ingest/clip_extractor.h"
#include "ingest/track_builder.h"
#include "serve/corpus_manager.h"

namespace mivid {

class CameraIngestor {
 public:
  /// `db` and `corpora` must outlive the ingestor.
  CameraIngestor(std::string camera_id, VideoDb* db, CorpusManager* corpora,
                 const IngestOptions& options);

  struct FrameResult {
    int clips_cut = 0;          ///< auto-cuts triggered by this frame
    int late_observations = 0;  ///< observations for retired ids, dropped
  };

  /// Ingests one frame (absolute stream frame, strictly ascending).
  Result<FrameResult> Observe(const FrameObservations& frame);

  /// Annotates an incident over absolute stream frames (inclusive).
  /// Must arrive before the covering clip is cut.
  Status AddIncident(IncidentType type, int begin_frame, int end_frame,
                     std::vector<int> vehicle_ids);

  struct CutResult {
    int clip_id = -1;  ///< -1 when the clip was empty (nothing persisted)
    size_t bags_staged = 0;
    int total_frames = 0;
  };

  /// Cuts the current clip at the stream head: persists it, stages its
  /// bags, and starts the next clip. Empty clips are skipped.
  Result<CutResult> Cut();

  struct Stats {
    int64_t frames = 0;
    int64_t observations = 0;
    int64_t late_observations = 0;
    int64_t clips = 0;
    int64_t bags = 0;
    int stream_frame = -1;    ///< last absolute frame seen
    int lag_frames = 0;       ///< stream head - extractor commit watermark
    size_t live_tracks = 0;
    double window_ts_mean = 0.0;  ///< rolling TS-per-bag activity profile
    double window_ts_max = 0.0;
  };
  Stats stats() const;

  const std::string& camera_id() const { return camera_id_; }

 private:
  /// Cuts a clip spanning `total_frames` local frames. mu_ held.
  Result<CutResult> CutLocked(int total_frames);

  const std::string camera_id_;
  VideoDb* const db_;
  CorpusManager* const corpora_;
  const IngestOptions options_;

  mutable std::mutex mu_;
  LiveTrackBuilder builder_;
  IncrementalClipExtractor extractor_;
  int clip_begin_ = 0;        ///< absolute frame where the open clip starts
  int last_stream_frame_ = -1;
  std::vector<IncidentRecord> pending_incidents_;  ///< absolute frames
  RollingStats activity_;
  Stats stats_;
};

}  // namespace mivid

#endif  // MIVID_INGEST_CAMERA_INGESTOR_H_

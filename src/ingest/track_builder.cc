#include "ingest/track_builder.h"

#include <algorithm>

#include "common/logging.h"

namespace mivid {

LiveTrackBuilder::ObserveResult LiveTrackBuilder::Observe(
    int frame, const std::vector<TrackObservation>& obs) {
  MIVID_CHECK(frame > last_frame_)
      << "ingest frames must be strictly ascending: " << frame << " after "
      << last_frame_;
  last_frame_ = frame;

  ObserveResult result;
  for (const auto& o : obs) {
    if (finished_.count(o.track_id) != 0) {
      ++result.late_observations;
      continue;
    }
    Track& track = live_[o.track_id];
    track.id = o.track_id;
    track.points.push_back(TrackPoint{frame, o.centroid, o.bbox});
  }

  // Retire tracks that have been silent for the configured gap.
  for (auto it = live_.begin(); it != live_.end();) {
    if (frame - it->second.last_frame() >= retire_after_frames_) {
      result.retired.push_back(it->first);
      finished_.emplace(it->first, std::move(it->second));
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
  return result;
}

std::vector<Track> LiveTrackBuilder::Finish() {
  for (auto& [id, track] : live_) {
    finished_.emplace(id, std::move(track));
  }
  live_.clear();

  std::vector<Track> out;
  out.reserve(finished_.size());
  for (auto& [id, track] : finished_) out.push_back(std::move(track));
  finished_.clear();
  last_frame_ = -1;
  return out;
}

}  // namespace mivid

// IncrementalClipExtractor: streaming feature/window extraction that is
// bit-identical to the batch pipeline (event/features.h +
// event/sliding_window.h) over the same clip.
//
// The batch pipeline has two places where a checkpoint's value depends
// on the *future* of the clip:
//
//  1. Eligibility. ComputeTrackFeatures drops tracks with fewer than
//     two checkpoints — including from the mdist co-visibility index —
//     so whether a track "counts" at frame g may only be decided by
//     observations after g.
//  2. Normalization. FeatureScaler::Fit spans the whole clip, so a
//     bag's normalized features are only final at clip end.
//
// The extractor solves (1) with a commit watermark: grid frame g
// commits only once every track observed at g has resolved — reached
// its second checkpoint (eligible forever) or been retired (ineligible
// forever if it had fewer than two). Commit lag is therefore bounded
// by sampling_rate + retire_after_frames. Windows materialize when
// their last grid frame commits, carrying raw (unnormalized) features.
// (2) is solved by keeping features raw until the clip is cut: the
// scaler's per-dimension min/max are maintained incrementally by an
// exact add-only sliding aggregate (event/window_agg.h), and the
// ingestor normalizes bags at cut with the final scaler.
//
// tests/ingest_test.cc asserts the streamed windows and scaler equal
// the batch extraction bitwise on simulated scenarios.

#ifndef MIVID_INGEST_CLIP_EXTRACTOR_H_
#define MIVID_INGEST_CLIP_EXTRACTOR_H_

#include <cstddef>
#include <map>
#include <vector>

#include "event/sliding_window.h"
#include "event/window_agg.h"
#include "ingest/stream_types.h"

namespace mivid {

class IncrementalClipExtractor {
 public:
  IncrementalClipExtractor(const FeatureOptions& features,
                           const WindowOptions& windows);

  /// Ingests one frame (strictly ascending; one call per frame, carrying
  /// every observation of that frame). Non-grid frames advance the
  /// clock; grid frames add checkpoints.
  void Observe(int frame, const std::vector<TrackObservation>& obs);

  /// Declares that `track_id` will never be observed again (builder
  /// retirement or end of clip). Resolves the track's eligibility.
  void Retire(int track_id);

  struct Output {
    std::vector<VideoSequence> windows;  ///< raw features, batch order
    FeatureScaler scaler;                ///< whole-clip min/max
  };

  /// Finishes the clip: retires every live track, commits through the
  /// clip's last grid frame and returns the extraction. `total_frames`
  /// must cover every observed frame. Resets the extractor.
  Output Finish(int total_frames);

  /// Highest grid frame committed so far (-1 before the first).
  int watermark() const { return next_grid_ - rate_; }

  /// Frames between the stream head and the committed watermark — the
  /// ingest lag induced by eligibility resolution.
  int lag_frames() const {
    return current_frame_ < 0 ? 0 : current_frame_ - watermark();
  }

  size_t windows_materialized() const { return windows_.size(); }

 private:
  struct TrackState {
    std::vector<TrackPoint> checkpoints;        ///< raw grid observations
    std::vector<SamplingPointFeatures> feats;   ///< committed features
    std::map<int, size_t> ordinal_by_frame;     ///< grid frame -> ordinal
    bool retired = false;
  };

  bool Resolved(const TrackState& s) const {
    return s.retired || s.checkpoints.size() >= 2;
  }

  /// Commits every grid frame whose tracks are all resolved.
  void AdvanceWatermark();
  void CommitGrid(int g);
  void MaterializeWindow(int end_grid);

  const FeatureOptions features_;
  const int rate_;
  const int wsize_;
  const int stride_;
  const bool keep_empty_;

  int current_frame_ = -1;
  int next_grid_ = 0;
  std::map<int, TrackState> tracks_;
  /// Track ids with a checkpoint at each not-yet-committed grid frame.
  std::map<int, std::vector<int>> tracks_at_grid_;

  std::vector<VideoSequence> windows_;
  ScalerAgg scaler_agg_;
};

}  // namespace mivid

#endif  // MIVID_INGEST_CLIP_EXTRACTOR_H_

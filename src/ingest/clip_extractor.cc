#include "ingest/clip_extractor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mivid {

IncrementalClipExtractor::IncrementalClipExtractor(
    const FeatureOptions& features, const WindowOptions& windows)
    : features_(features),
      rate_(std::max(1, features.sampling_rate)),
      wsize_(std::max(1, windows.window_size)),
      stride_(std::max(1, windows.stride)),
      keep_empty_(windows.keep_empty) {}

void IncrementalClipExtractor::Observe(
    int frame, const std::vector<TrackObservation>& obs) {
  MIVID_CHECK(frame > current_frame_)
      << "extractor frames must be strictly ascending: " << frame
      << " after " << current_frame_;
  current_frame_ = frame;

  if (frame % rate_ == 0) {
    for (const auto& o : obs) {
      TrackState& s = tracks_[o.track_id];
      if (s.retired) continue;  // late observation, dropped upstream too
      if (s.ordinal_by_frame.count(frame) != 0) continue;  // duplicate
      s.ordinal_by_frame[frame] = s.checkpoints.size();
      s.checkpoints.push_back(TrackPoint{frame, o.centroid, o.bbox});
      tracks_at_grid_[frame].push_back(o.track_id);
    }
  }
  AdvanceWatermark();
}

void IncrementalClipExtractor::Retire(int track_id) {
  auto it = tracks_.find(track_id);
  if (it == tracks_.end()) return;  // never seen on the grid: no effect
  it->second.retired = true;
  AdvanceWatermark();
}

void IncrementalClipExtractor::AdvanceWatermark() {
  while (next_grid_ <= current_frame_) {
    auto it = tracks_at_grid_.find(next_grid_);
    if (it != tracks_at_grid_.end()) {
      for (int id : it->second) {
        if (!Resolved(tracks_.at(id))) return;  // watermark waits
      }
    }
    CommitGrid(next_grid_);
    next_grid_ += rate_;
  }
}

void IncrementalClipExtractor::CommitGrid(int g) {
  // Eligible tracks at g, ascending id (the final track order — the
  // builder finishes tracks in id order, so this matches the batch
  // `sampled` iteration order).
  std::vector<int> eligible;
  auto it = tracks_at_grid_.find(g);
  if (it != tracks_at_grid_.end()) {
    for (int id : it->second) {
      if (tracks_.at(id).checkpoints.size() >= 2) eligible.push_back(id);
    }
    std::sort(eligible.begin(), eligible.end());
  }

  for (int id : eligible) {
    TrackState& s = tracks_.at(id);
    const size_t i = s.ordinal_by_frame.at(g);
    MIVID_CHECK(i == s.feats.size())
        << "checkpoint committed out of order for track " << id;
    const std::vector<TrackPoint>& cp = s.checkpoints;

    // Same arithmetic as ComputeTrackFeatures (event/features.cc).
    SamplingPointFeatures f;
    f.frame = g;
    f.centroid = cp[i].centroid;
    if (i >= 1) {
      const int dt = cp[i].frame - cp[i - 1].frame;
      f.speed =
          Distance(cp[i].centroid, cp[i - 1].centroid) / std::max(1, dt);
    }
    if (i >= 2) {
      const int dt_prev = cp[i - 1].frame - cp[i - 2].frame;
      const double prev_speed =
          Distance(cp[i - 1].centroid, cp[i - 2].centroid) /
          std::max(1, dt_prev);
      f.vdiff = std::fabs(f.speed - prev_speed);
      const Vec2 m1 = cp[i - 1].centroid - cp[i - 2].centroid;
      const Vec2 m2 = cp[i].centroid - cp[i - 1].centroid;
      f.theta = m1.Norm() >= features_.min_motion &&
                        m2.Norm() >= features_.min_motion
                    ? AngleBetween(m1, m2)
                    : 0.0;
    }

    double mdist = -1.0;
    for (int other : eligible) {
      if (other == id) continue;
      const double d =
          Distance(f.centroid, tracks_.at(other).checkpoints
                                   [tracks_.at(other).ordinal_by_frame.at(g)]
                                       .centroid);
      if (mdist < 0 || d < mdist) mdist = d;
    }
    f.inv_mdist =
        mdist < 0 ? 0.0 : 1.0 / std::max(mdist, features_.min_mdist);

    s.feats.push_back(f);
    scaler_agg_.Add(f.ToVector(features_.include_velocity));
  }

  MaterializeWindow(g);
  tracks_at_grid_.erase(g);
}

void IncrementalClipExtractor::MaterializeWindow(int end_grid) {
  const int span = (wsize_ - 1) * rate_;
  const int start = end_grid - span;
  if (start < 0 || start % (stride_ * rate_) != 0) return;

  VideoSequence vs;
  vs.vs_id = start / (stride_ * rate_);
  vs.begin_frame = start;
  vs.end_frame = end_grid;

  // Candidates must have a checkpoint at the end grid; walk them in id
  // order to reproduce the batch TS order within the bag.
  std::vector<int> candidates;
  auto it = tracks_at_grid_.find(end_grid);
  if (it != tracks_at_grid_.end()) {
    for (int id : it->second) {
      if (tracks_.at(id).checkpoints.size() >= 2) candidates.push_back(id);
    }
    std::sort(candidates.begin(), candidates.end());
  }

  for (int id : candidates) {
    const TrackState& s = tracks_.at(id);
    TrajectorySequence ts;
    ts.track_id = id;
    ts.vs_id = vs.vs_id;
    bool complete = true;
    for (int k = 0; k < wsize_; ++k) {
      auto ord = s.ordinal_by_frame.find(start + k * rate_);
      if (ord == s.ordinal_by_frame.end()) {
        complete = false;
        break;
      }
      ts.points.push_back(s.feats[ord->second]);
    }
    if (complete) vs.ts.push_back(std::move(ts));
  }

  if (!vs.ts.empty() || keep_empty_) windows_.push_back(std::move(vs));
}

IncrementalClipExtractor::Output IncrementalClipExtractor::Finish(
    int total_frames) {
  MIVID_CHECK(total_frames > current_frame_)
      << "total_frames " << total_frames
      << " does not cover observed frame " << current_frame_;
  for (auto& [id, s] : tracks_) s.retired = true;
  current_frame_ = total_frames - 1;
  AdvanceWatermark();
  MIVID_CHECK(tracks_at_grid_.empty());

  Output out;
  out.windows = std::move(windows_);
  out.scaler =
      scaler_agg_.Scaler(features_.include_velocity ? 4 : 3);

  tracks_.clear();
  tracks_at_grid_.clear();
  windows_.clear();
  scaler_agg_ = ScalerAgg();
  current_frame_ = -1;
  next_grid_ = 0;
  return out;
}

}  // namespace mivid

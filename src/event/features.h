// Sampling-point property vectors (paper Sec. 4).
//
// With a sampling rate of R frames per checkpoint, each track yields a
// series of checkpoints. At checkpoint i the paper records the property
// vector a_i = [1/mdist_i, vdiff_i, theta_i]:
//   - mdist: distance to the nearest other vehicle at that checkpoint,
//   - vdiff: change of speed versus the previous checkpoint,
//   - theta: absolute angle between consecutive motion vectors (Fig. 3).
// We also keep the raw speed so alternative event models (e.g. speeding)
// can be expressed; it joins the vector only when
// FeatureOptions::include_velocity is set.

#ifndef MIVID_EVENT_FEATURES_H_
#define MIVID_EVENT_FEATURES_H_

#include <vector>

#include "linalg/matrix.h"
#include "trajectory/trajectory.h"

namespace mivid {

/// Feature extraction parameters.
struct FeatureOptions {
  int sampling_rate = 5;        ///< frames per checkpoint (paper: 5)
  double min_mdist = 1.0;       ///< clamp so 1/mdist stays finite
  double min_motion = 1.0;      ///< motion vectors shorter than this (px)
                                ///< carry no reliable direction: theta = 0
  bool include_velocity = false; ///< append speed as a 4th feature
};

/// The property vector of one checkpoint on one trajectory.
struct SamplingPointFeatures {
  int frame = 0;          ///< absolute frame index of the checkpoint
  Point2 centroid;        ///< position at the checkpoint
  double speed = 0.0;     ///< px/frame between previous and this checkpoint
  double inv_mdist = 0.0; ///< 1/mdist; 0 when no other vehicle is visible
  double vdiff = 0.0;     ///< |speed - previous speed|
  double theta = 0.0;     ///< angle between consecutive motion vectors, rad

  /// a_i as used by scoring and learning. 3 features by default; 4 with
  /// include_velocity.
  Vec ToVector(bool include_velocity) const {
    Vec v{inv_mdist, vdiff, theta};
    if (include_velocity) v.push_back(speed);
    return v;
  }
};

/// All checkpoint features of one track.
struct TrackFeatures {
  int track_id = -1;
  std::vector<SamplingPointFeatures> points;  ///< ascending frame order
};

/// Computes checkpoint features for every track of a clip. Checkpoints lie
/// on the shared grid (frame % sampling_rate == 0) so that mdist can relate
/// co-occurring vehicles; tracks shorter than two checkpoints are dropped.
std::vector<TrackFeatures> ComputeTrackFeatures(
    const std::vector<Track>& tracks, const FeatureOptions& options);

/// Min-max feature scaler fitted over every checkpoint of a clip.
///
/// The three raw features live on incommensurate scales (1/px, px/frame,
/// radians); the paper's square-sum heuristic and inverse-std-dev weights
/// presume comparable ranges, so all downstream consumers work on features
/// normalized to [0, 1] per dimension.
class FeatureScaler {
 public:
  /// Fits per-dimension [min, max] over all checkpoints.
  static FeatureScaler Fit(const std::vector<TrackFeatures>& tracks,
                           bool include_velocity);

  /// Builds a scaler from precomputed bounds (the incremental path:
  /// event/window_agg.h maintains the same min/max by add/evict).
  static FeatureScaler FromBounds(Vec lo, Vec hi);

  /// Returns the normalized copy of a raw vector (clamped to [0, 1]).
  Vec Apply(const Vec& raw) const;

  size_t dimension() const { return lo_.size(); }
  const Vec& lower() const { return lo_; }
  const Vec& upper() const { return hi_; }

 private:
  Vec lo_;
  Vec hi_;
};

}  // namespace mivid

#endif  // MIVID_EVENT_FEATURES_H_

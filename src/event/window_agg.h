// Exact incremental sliding-window aggregation (add/evict) for the
// streaming ingestion pipeline (docs/ingest.md).
//
// The classic trick (HammerSlide / two-stack queue): a window is two
// stacks, an out-stack holding the oldest elements with suffix
// aggregates and an in-stack holding the newest with one running
// aggregate. Add and Evict are amortized O(1) and never recompute the
// whole window; Query combines the two partial aggregates.
//
// Exactness contract (property-tested in tests/window_agg_test.cc):
//  * kMin/kMax are associative and commutative in IEEE-754 for NaN-free
//    inputs, so Query() is bit-identical to a batch fold over the
//    window contents regardless of the add/evict history. (The one
//    caveat is a -0.0/+0.0 tie, where std::min/std::max pick by
//    argument order; the tie compares equal either way and the feature
//    pipeline never produces -0.0.)
//  * kSum is exact — bit-identical to a left-to-right batch fold —
//    whenever the partial sums are exactly representable (e.g.
//    integer-valued doubles below 2^53, which is what the ingest
//    counters feed it). For general floats it is a correctly-rounded
//    reassociation, not bit-identical.

#ifndef MIVID_EVENT_WINDOW_AGG_H_
#define MIVID_EVENT_WINDOW_AGG_H_

#include <cstddef>
#include <vector>

#include "event/features.h"
#include "linalg/matrix.h"

namespace mivid {

enum class WindowAggOp { kMin, kMax, kSum };

/// One scalar sliding-window aggregate with exact add/evict.
class SlidingAgg {
 public:
  explicit SlidingAgg(WindowAggOp op) : op_(op) {}

  /// Pushes the newest value into the window.
  void Add(double value);

  /// Drops the oldest value. No-op on an empty window.
  void Evict();

  /// Aggregate over the current window. Empty window: 0 for kSum;
  /// min/max of nothing is undefined, so callers must check empty()
  /// first (returns 0 as a safe fallback).
  double Query() const;

  size_t size() const { return front_.size() + back_.size(); }
  bool empty() const { return size() == 0; }

 private:
  struct Entry {
    double value;
    double agg;  ///< fold over this element .. newest of its stack run
  };

  double Combine(double acc, double v) const;

  WindowAggOp op_;
  // front_: oldest elements; back() is the very oldest. Each entry's
  // agg covers that element through the newest element flipped with it.
  std::vector<Entry> front_;
  // back_: newest elements in arrival order, aggregated in back_agg_.
  std::vector<double> back_;
  double back_agg_ = 0.0;
};

/// Per-dimension [min, max] over a sliding window of raw feature
/// vectors. With an unbounded window (never evicting) the produced
/// FeatureScaler is bit-identical to FeatureScaler::Fit over the same
/// vectors in the same order.
class ScalerAgg {
 public:
  /// Adds the newest raw vector. The first Add fixes the dimension;
  /// later vectors must match it.
  void Add(const Vec& raw);

  /// Drops the oldest vector. No-op when empty.
  void Evict();

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t dimension() const { return mins_.size(); }

  /// Current bounds as a FeatureScaler. Empty window: the identity
  /// scaler over `fallback_dim` (mirrors FeatureScaler::Fit on no
  /// data).
  FeatureScaler Scaler(size_t fallback_dim) const;

 private:
  std::vector<SlidingAgg> mins_;
  std::vector<SlidingAgg> maxs_;
  size_t count_ = 0;
};

/// Rolling min/max/mean over the last `capacity` observations of one
/// scalar series — the ingest pipeline's per-camera activity profile
/// (e.g. TS count per materialized window), exported as gauges.
class RollingStats {
 public:
  explicit RollingStats(size_t capacity);

  void Observe(double value);

  size_t size() const { return sum_.size(); }
  bool empty() const { return sum_.empty(); }
  double Min() const { return min_.Query(); }
  double Max() const { return max_.Query(); }
  double Sum() const { return sum_.Query(); }
  double Mean() const { return empty() ? 0.0 : Sum() / size(); }

 private:
  size_t capacity_;
  SlidingAgg min_;
  SlidingAgg max_;
  SlidingAgg sum_;
};

}  // namespace mivid

#endif  // MIVID_EVENT_WINDOW_AGG_H_

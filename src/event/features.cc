#include "event/features.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace mivid {

std::vector<TrackFeatures> ComputeTrackFeatures(
    const std::vector<Track>& tracks, const FeatureOptions& options) {
  const int rate = std::max(1, options.sampling_rate);

  // Checkpoint positions per track on the shared grid.
  struct Sampled {
    int track_id;
    std::vector<TrackPoint> points;
  };
  std::vector<Sampled> sampled;
  for (const auto& track : tracks) {
    Sampled s{track.id, SampleEvery(track, rate)};
    if (s.points.size() >= 2) sampled.push_back(std::move(s));
  }

  // Index centroids of every track by grid frame for mdist lookups.
  std::map<int, std::vector<std::pair<int, Point2>>> by_frame;
  for (const auto& s : sampled) {
    for (const auto& p : s.points) {
      by_frame[p.frame].emplace_back(s.track_id, p.centroid);
    }
  }

  std::vector<TrackFeatures> out;
  out.reserve(sampled.size());
  for (const auto& s : sampled) {
    TrackFeatures tf;
    tf.track_id = s.track_id;
    tf.points.reserve(s.points.size());

    for (size_t i = 0; i < s.points.size(); ++i) {
      SamplingPointFeatures f;
      f.frame = s.points[i].frame;
      f.centroid = s.points[i].centroid;

      if (i >= 1) {
        const int dt = s.points[i].frame - s.points[i - 1].frame;
        f.speed = Distance(s.points[i].centroid, s.points[i - 1].centroid) /
                  std::max(1, dt);
      }
      if (i >= 2) {
        const int dt_prev = s.points[i - 1].frame - s.points[i - 2].frame;
        const double prev_speed =
            Distance(s.points[i - 1].centroid, s.points[i - 2].centroid) /
            std::max(1, dt_prev);
        f.vdiff = std::fabs(f.speed - prev_speed);
        const Vec2 m1 = s.points[i - 1].centroid - s.points[i - 2].centroid;
        const Vec2 m2 = s.points[i].centroid - s.points[i - 1].centroid;
        // Centroid jitter on a near-stationary vehicle produces random
        // directions; only measure the angle when both motion vectors are
        // long enough to be trustworthy.
        f.theta = m1.Norm() >= options.min_motion &&
                          m2.Norm() >= options.min_motion
                      ? AngleBetween(m1, m2)
                      : 0.0;
      }

      // Minimum distance to the nearest co-visible vehicle.
      double mdist = -1.0;
      auto it = by_frame.find(f.frame);
      if (it != by_frame.end()) {
        for (const auto& [other_id, centroid] : it->second) {
          if (other_id == s.track_id) continue;
          const double d = Distance(f.centroid, centroid);
          if (mdist < 0 || d < mdist) mdist = d;
        }
      }
      f.inv_mdist =
          mdist < 0 ? 0.0 : 1.0 / std::max(mdist, options.min_mdist);

      tf.points.push_back(f);
    }
    out.push_back(std::move(tf));
  }
  return out;
}

FeatureScaler FeatureScaler::Fit(const std::vector<TrackFeatures>& tracks,
                                 bool include_velocity) {
  FeatureScaler scaler;
  bool first = true;
  for (const auto& tf : tracks) {
    for (const auto& p : tf.points) {
      const Vec v = p.ToVector(include_velocity);
      if (first) {
        scaler.lo_ = v;
        scaler.hi_ = v;
        first = false;
        continue;
      }
      for (size_t d = 0; d < v.size(); ++d) {
        scaler.lo_[d] = std::min(scaler.lo_[d], v[d]);
        scaler.hi_[d] = std::max(scaler.hi_[d], v[d]);
      }
    }
  }
  if (first) {
    // No data: identity scaler over the nominal dimension.
    scaler.lo_.assign(include_velocity ? 4 : 3, 0.0);
    scaler.hi_.assign(include_velocity ? 4 : 3, 1.0);
  }
  return scaler;
}

FeatureScaler FeatureScaler::FromBounds(Vec lo, Vec hi) {
  FeatureScaler scaler;
  scaler.lo_ = std::move(lo);
  scaler.hi_ = std::move(hi);
  return scaler;
}

Vec FeatureScaler::Apply(const Vec& raw) const {
  Vec out(raw.size());
  for (size_t d = 0; d < raw.size() && d < lo_.size(); ++d) {
    const double span = hi_[d] - lo_[d];
    out[d] = span > 0 ? std::clamp((raw[d] - lo_[d]) / span, 0.0, 1.0) : 0.0;
  }
  return out;
}

}  // namespace mivid

// Sliding-window extraction of Video Sequences and Trajectory Sequences
// (paper Sec. 5.1, Fig. 4).
//
// A window of `window_size` sampling points (paper: 3 points = 15 frames
// for car-crash events) slides over the clip's checkpoint grid with a
// configurable stride. Each window is a Video Sequence (VS, a bag); the
// portion of each track fully covering the window's checkpoints is a
// Trajectory Sequence (TS, an instance).

#ifndef MIVID_EVENT_SLIDING_WINDOW_H_
#define MIVID_EVENT_SLIDING_WINDOW_H_

#include <vector>

#include "event/features.h"

namespace mivid {

/// A TS: one track's feature sequence inside one window.
struct TrajectorySequence {
  int track_id = -1;
  int vs_id = -1;
  std::vector<SamplingPointFeatures> points;  ///< exactly window_size entries

  /// Concatenated normalized feature vector alpha = [a_1 ... a_n]
  /// (the representation One-class SVM learns from, Sec. 5.3).
  Vec Flatten(const FeatureScaler& scaler, bool include_velocity) const;

  /// Concatenated raw feature vector (heuristic / baseline space).
  Vec FlattenRaw(bool include_velocity) const;
};

/// A VS: one sliding-window bag of TS instances.
struct VideoSequence {
  int vs_id = -1;
  int begin_frame = 0;  ///< first checkpoint frame in the window
  int end_frame = 0;    ///< last checkpoint frame in the window
  std::vector<TrajectorySequence> ts;  ///< contained instances

  bool empty() const { return ts.empty(); }
};

/// Windowing parameters.
struct WindowOptions {
  int window_size = 3;  ///< checkpoints per window (paper: 3)
  int stride = 3;       ///< checkpoints the window advances per step;
                        ///< window_size => tiling, 1 => max overlap
  bool keep_empty = false;  ///< keep VSs with no TS (default: drop)
};

/// Slides the window over the checkpoint grid of a clip spanning
/// [0, total_frames) and collects VSs with their TSs. A track contributes
/// a TS to a window only if it has a checkpoint at every grid frame of
/// the window (the paper's TSs are "15 frames each").
std::vector<VideoSequence> ExtractWindows(
    const std::vector<TrackFeatures>& tracks, int total_frames,
    const FeatureOptions& feature_options, const WindowOptions& options);

/// Total TS count across a set of windows.
size_t CountTrajectorySequences(const std::vector<VideoSequence>& windows);

}  // namespace mivid

#endif  // MIVID_EVENT_SLIDING_WINDOW_H_

// Event models: the per-event-type heuristics used for the initial query
// (paper Sec. 4 and 5.3).
//
// For accidents the paper scores a sampling point by the square sum of the
// property vector [1/mdist, vdiff, theta]: a short distance to another
// vehicle, a large speed change and a sudden direction change all indicate
// a possible accident. The same mechanism "may also be adjusted to detect
// U-turns, speeding and any other event" — expressed here as per-feature
// weights.

#ifndef MIVID_EVENT_EVENT_MODEL_H_
#define MIVID_EVENT_EVENT_MODEL_H_

#include <string>

#include "event/features.h"
#include "event/sliding_window.h"

namespace mivid {

/// A weighted square-sum scoring model over normalized checkpoint features.
struct EventModel {
  std::string name;
  Vec weights;  ///< per-feature weights over the (normalized) alpha vector

  /// Score of one normalized checkpoint vector: sum_f w_f * x_f^2.
  double ScorePoint(const Vec& normalized_alpha) const;

  /// Score of a TS: the maximum checkpoint score (paper Sec. 5.3,
  /// S_Ti = max(S_a1, ..., S_an)).
  double ScoreTs(const TrajectorySequence& ts, const FeatureScaler& scaler,
                 bool include_velocity) const;

  /// Score of a VS: the maximum contained TS score
  /// (S_v = max(S_T1, ..., S_Tn)).
  double ScoreVs(const VideoSequence& vs, const FeatureScaler& scaler,
                 bool include_velocity) const;

  /// The paper's accident model: unit weights over [1/mdist, vdiff, theta].
  /// `dimension` is 3, or 4 when velocity is included (weight 0 for it).
  static EventModel Accident(size_t dimension = 3);

  /// U-turn model: direction change dominates; proximity is irrelevant.
  static EventModel UTurn(size_t dimension = 3);

  /// Speeding model: requires the 4-feature vector (velocity weighted).
  static EventModel Speeding();
};

}  // namespace mivid

#endif  // MIVID_EVENT_EVENT_MODEL_H_

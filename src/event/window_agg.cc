#include "event/window_agg.h"

#include <algorithm>

#include "common/logging.h"

namespace mivid {

double SlidingAgg::Combine(double acc, double v) const {
  switch (op_) {
    case WindowAggOp::kMin:
      return std::min(acc, v);
    case WindowAggOp::kMax:
      return std::max(acc, v);
    case WindowAggOp::kSum:
      return acc + v;
  }
  return v;
}

void SlidingAgg::Add(double value) {
  back_agg_ = back_.empty() ? value : Combine(back_agg_, value);
  back_.push_back(value);
}

void SlidingAgg::Evict() {
  if (front_.empty()) {
    // Flip: drain the in-stack newest-first so the oldest element ends
    // on top of the out-stack, each entry carrying the fold over
    // itself and everything newer in the flipped run.
    double agg = 0.0;
    for (size_t i = back_.size(); i-- > 0;) {
      const double v = back_[i];
      agg = i + 1 == back_.size() ? v : Combine(v, agg);
      front_.push_back(Entry{v, agg});
    }
    back_.clear();
  }
  if (!front_.empty()) front_.pop_back();
}

double SlidingAgg::Query() const {
  if (empty()) return 0.0;
  if (front_.empty()) return back_agg_;
  if (back_.empty()) return front_.back().agg;
  return Combine(front_.back().agg, back_agg_);
}

void ScalerAgg::Add(const Vec& raw) {
  if (mins_.empty()) {
    mins_.assign(raw.size(), SlidingAgg(WindowAggOp::kMin));
    maxs_.assign(raw.size(), SlidingAgg(WindowAggOp::kMax));
  }
  MIVID_CHECK(raw.size() == mins_.size())
      << "ScalerAgg dimension mismatch: " << raw.size() << " vs "
      << mins_.size();
  for (size_t d = 0; d < raw.size(); ++d) {
    mins_[d].Add(raw[d]);
    maxs_[d].Add(raw[d]);
  }
  ++count_;
}

void ScalerAgg::Evict() {
  if (count_ == 0) return;
  for (size_t d = 0; d < mins_.size(); ++d) {
    mins_[d].Evict();
    maxs_[d].Evict();
  }
  --count_;
}

FeatureScaler ScalerAgg::Scaler(size_t fallback_dim) const {
  if (count_ == 0) {
    return FeatureScaler::FromBounds(Vec(fallback_dim, 0.0),
                                     Vec(fallback_dim, 1.0));
  }
  Vec lo(mins_.size()), hi(maxs_.size());
  for (size_t d = 0; d < mins_.size(); ++d) {
    lo[d] = mins_[d].Query();
    hi[d] = maxs_[d].Query();
  }
  return FeatureScaler::FromBounds(std::move(lo), std::move(hi));
}

RollingStats::RollingStats(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      min_(WindowAggOp::kMin),
      max_(WindowAggOp::kMax),
      sum_(WindowAggOp::kSum) {}

void RollingStats::Observe(double value) {
  if (sum_.size() == capacity_) {
    min_.Evict();
    max_.Evict();
    sum_.Evict();
  }
  min_.Add(value);
  max_.Add(value);
  sum_.Add(value);
}

}  // namespace mivid

#include "event/sliding_window.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

Vec TrajectorySequence::Flatten(const FeatureScaler& scaler,
                                bool include_velocity) const {
  Vec out;
  out.reserve(points.size() * scaler.dimension());
  for (const auto& p : points) {
    const Vec n = scaler.Apply(p.ToVector(include_velocity));
    out.insert(out.end(), n.begin(), n.end());
  }
  return out;
}

Vec TrajectorySequence::FlattenRaw(bool include_velocity) const {
  Vec out;
  for (const auto& p : points) {
    const Vec v = p.ToVector(include_velocity);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::vector<VideoSequence> ExtractWindows(
    const std::vector<TrackFeatures>& tracks, int total_frames,
    const FeatureOptions& feature_options, const WindowOptions& options) {
  MIVID_TRACE_SPAN("event/extract_windows");
  MIVID_SCOPED_TIMER("window/extract_seconds");
  std::vector<VideoSequence> windows;
  const int rate = std::max(1, feature_options.sampling_rate);
  const int wsize = std::max(1, options.window_size);
  const int stride = std::max(1, options.stride);

  // Per-track lookup: checkpoint frame -> index into points.
  std::vector<std::map<int, size_t>> lookup(tracks.size());
  for (size_t t = 0; t < tracks.size(); ++t) {
    for (size_t i = 0; i < tracks[t].points.size(); ++i) {
      lookup[t][tracks[t].points[i].frame] = i;
    }
  }

  const int last_grid = (total_frames - 1) / rate * rate;
  int vs_id = 0;
  for (int start = 0; start + (wsize - 1) * rate <= last_grid;
       start += stride * rate) {
    VideoSequence vs;
    vs.vs_id = vs_id;
    vs.begin_frame = start;
    vs.end_frame = start + (wsize - 1) * rate;

    for (size_t t = 0; t < tracks.size(); ++t) {
      // The track must cover every checkpoint of the window.
      TrajectorySequence ts;
      ts.track_id = tracks[t].track_id;
      ts.vs_id = vs.vs_id;
      bool complete = true;
      for (int k = 0; k < wsize; ++k) {
        auto it = lookup[t].find(start + k * rate);
        if (it == lookup[t].end()) {
          complete = false;
          break;
        }
        ts.points.push_back(tracks[t].points[it->second]);
      }
      if (complete) vs.ts.push_back(std::move(ts));
    }

    if (!vs.ts.empty() || options.keep_empty) {
      windows.push_back(std::move(vs));
    }
    ++vs_id;
  }
  MIVID_METRIC_COUNT("window/vs", windows.size());
  MIVID_METRIC_COUNT("window/ts", CountTrajectorySequences(windows));
  return windows;
}

size_t CountTrajectorySequences(const std::vector<VideoSequence>& windows) {
  size_t n = 0;
  for (const auto& vs : windows) n += vs.ts.size();
  return n;
}

}  // namespace mivid

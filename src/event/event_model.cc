#include "event/event_model.h"

#include <algorithm>

namespace mivid {

double EventModel::ScorePoint(const Vec& normalized_alpha) const {
  double score = 0.0;
  const size_t n = std::min(weights.size(), normalized_alpha.size());
  for (size_t f = 0; f < n; ++f) {
    score += weights[f] * normalized_alpha[f] * normalized_alpha[f];
  }
  return score;
}

double EventModel::ScoreTs(const TrajectorySequence& ts,
                           const FeatureScaler& scaler,
                           bool include_velocity) const {
  double best = 0.0;
  for (const auto& p : ts.points) {
    best = std::max(best,
                    ScorePoint(scaler.Apply(p.ToVector(include_velocity))));
  }
  return best;
}

double EventModel::ScoreVs(const VideoSequence& vs, const FeatureScaler& scaler,
                           bool include_velocity) const {
  double best = 0.0;
  for (const auto& ts : vs.ts) {
    best = std::max(best, ScoreTs(ts, scaler, include_velocity));
  }
  return best;
}

EventModel EventModel::Accident(size_t dimension) {
  EventModel m;
  m.name = "accident";
  m.weights.assign(dimension, 0.0);
  for (size_t f = 0; f < 3 && f < dimension; ++f) m.weights[f] = 1.0;
  return m;
}

EventModel EventModel::UTurn(size_t dimension) {
  EventModel m;
  m.name = "u_turn";
  m.weights.assign(dimension, 0.0);
  if (dimension >= 3) {
    m.weights[1] = 0.2;  // some speed change while turning
    m.weights[2] = 1.0;  // direction change dominates
  }
  return m;
}

EventModel EventModel::Speeding() {
  EventModel m;
  m.name = "speeding";
  m.weights = {0.0, 0.2, 0.0, 1.0};  // velocity-driven
  return m;
}

}  // namespace mivid

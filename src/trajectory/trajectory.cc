#include "trajectory/trajectory.h"

namespace mivid {

bool Track::CentroidAt(int frame, Point2* out) const {
  // Points are frame-sorted; binary search.
  size_t lo = 0, hi = points.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (points[mid].frame < frame) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < points.size() && points[lo].frame == frame) {
    *out = points[lo].centroid;
    return true;
  }
  return false;
}

double Track::PathLength() const {
  double total = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += Distance(points[i - 1].centroid, points[i].centroid);
  }
  return total;
}

std::vector<TrackPoint> SampleEvery(const Track& track, int stride) {
  std::vector<TrackPoint> out;
  if (track.empty() || stride <= 0) return out;
  const int first = track.first_frame();
  int next = ((first + stride - 1) / stride) * stride;
  for (const auto& p : track.points) {
    if (p.frame < next) continue;
    if (p.frame == next) {
      out.push_back(p);
      next += stride;
    } else {
      // Observation gap: skip forward to the next grid frame at or past p.
      while (next < p.frame) next += stride;
      if (p.frame == next) {
        out.push_back(p);
        next += stride;
      }
    }
  }
  return out;
}

}  // namespace mivid

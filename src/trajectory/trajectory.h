// Trajectory types and utilities.
//
// A Track is the per-vehicle sequence of observed centroids/MBRs across
// frames — produced either by the vision tracker (segment/ + track/) or
// directly by the simulator's ground-truth log. Everything downstream
// (curve fitting, event features, MIL retrieval) consumes Tracks.

#ifndef MIVID_TRAJECTORY_TRAJECTORY_H_
#define MIVID_TRAJECTORY_TRAJECTORY_H_

#include <vector>

#include "geometry/geometry.h"

namespace mivid {

/// One observation of a tracked object.
struct TrackPoint {
  int frame = 0;       ///< frame index within the clip
  Point2 centroid;     ///< MBR centroid (the red dot in paper Fig. 1)
  BBox bbox;           ///< minimal bounding rectangle
};

/// The full observed trajectory of one object.
struct Track {
  int id = -1;
  std::vector<TrackPoint> points;  ///< ascending frame order

  bool empty() const { return points.empty(); }
  int first_frame() const { return points.empty() ? -1 : points.front().frame; }
  int last_frame() const { return points.empty() ? -1 : points.back().frame; }

  /// Centroid at `frame` if observed; returns false otherwise.
  bool CentroidAt(int frame, Point2* out) const;

  /// Total path length (sum of centroid displacements).
  double PathLength() const;
};

/// Resamples a track's centroids every `stride` frames starting at the
/// smallest multiple of `stride` >= first_frame(). Frames with no
/// observation are skipped.
std::vector<TrackPoint> SampleEvery(const Track& track, int stride);

}  // namespace mivid

#endif  // MIVID_TRAJECTORY_TRAJECTORY_H_

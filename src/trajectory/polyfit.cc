#include "trajectory/polyfit.h"

#include <cmath>

#include "common/string_util.h"
#include "linalg/solve.h"

namespace mivid {

double Polynomial::Eval(double x) const {
  if (coeffs_.empty()) return 0.0;
  const double u = (x - shift_) / scale_;
  double acc = 0.0;
  for (size_t i = coeffs_.size(); i-- > 0;) acc = acc * u + coeffs_[i];
  return acc;
}

Polynomial Polynomial::Derivative() const {
  if (coeffs_.size() <= 1) return Polynomial(Vec{0.0}, shift_, scale_);
  Vec d(coeffs_.size() - 1);
  for (size_t i = 1; i < coeffs_.size(); ++i) {
    // d/dx c_i u^i = c_i * i * u^(i-1) / scale
    d[i - 1] = coeffs_[i] * static_cast<double>(i) / scale_;
  }
  return Polynomial(std::move(d), shift_, scale_);
}

Result<Polynomial> FitPolynomial(const Vec& xs, const Vec& ys, int degree,
                                 FitMethod method) {
  if (degree < 0) return Status::InvalidArgument("degree must be >= 0");
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("xs and ys must have equal length");
  }
  const size_t n = xs.size();
  const size_t k = static_cast<size_t>(degree) + 1;
  if (n < k) {
    return Status::InvalidArgument(
        StrFormat("need at least %zu samples for degree %d, got %zu", k,
                  degree, n));
  }

  // Center and scale the abscissae to roughly [-1, 1].
  double lo = xs[0], hi = xs[0];
  for (double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double shift = (lo + hi) / 2.0;
  double scale = (hi - lo) / 2.0;
  if (scale <= 0.0) {
    if (degree == 0) {
      // All abscissae identical: the best constant is the mean ordinate.
      double mean = 0.0;
      for (double y : ys) mean += y;
      return Polynomial(Vec{mean / static_cast<double>(n)}, shift, 1.0);
    }
    return Status::InvalidArgument("degenerate abscissae (all x identical)");
  }

  // Vandermonde matrix over the normalized variable (Eq. 2).
  Matrix a(n, k);
  for (size_t r = 0; r < n; ++r) {
    const double u = (xs[r] - shift) / scale;
    double p = 1.0;
    for (size_t c = 0; c < k; ++c) {
      a.At(r, c) = p;
      p *= u;
    }
  }

  Result<Vec> coeffs = method == FitMethod::kQR ? LeastSquaresQR(a, ys)
                                                : LeastSquaresNormal(a, ys);
  if (!coeffs.ok()) return coeffs.status();
  return Polynomial(std::move(coeffs).value(), shift, scale);
}

Result<FittedTrajectory> FitTrack(const Track& track, int degree,
                                  FitMethod method) {
  const size_t n = track.points.size();
  if (n < static_cast<size_t>(degree) + 1) {
    return Status::InvalidArgument(
        StrFormat("track %d has %zu points, need %d for degree %d", track.id,
                  n, degree + 1, degree));
  }
  Vec ts(n), xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    ts[i] = track.points[i].frame;
    xs[i] = track.points[i].centroid.x;
    ys[i] = track.points[i].centroid.y;
  }
  FittedTrajectory fit;
  MIVID_ASSIGN_OR_RETURN(fit.x_of_t, FitPolynomial(ts, xs, degree, method));
  MIVID_ASSIGN_OR_RETURN(fit.y_of_t, FitPolynomial(ts, ys, degree, method));

  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point2 p = fit.Eval(ts[i]);
    sq += SquaredDistance({p.x, p.y}, {xs[i], ys[i]});
  }
  fit.rms_error = std::sqrt(sq / static_cast<double>(n));
  return fit;
}

}  // namespace mivid

// Least-squares polynomial curve fitting (paper Sec. 3.2, Eq. 1-2).
//
// A vehicle trajectory's centroids are approximated by a k-th degree
// polynomial y = a0 + a1 x + ... + ak x^k whose coefficients minimize the
// squared deviation. The first derivative gives the tangent (velocity)
// along the curve. Trajectories are fitted per-coordinate against time to
// remain well-defined for vertical motion.

#ifndef MIVID_TRAJECTORY_POLYFIT_H_
#define MIVID_TRAJECTORY_POLYFIT_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "trajectory/trajectory.h"

namespace mivid {

/// A fitted univariate polynomial over a normalized abscissa:
/// p(x) = sum_i c_i * u^i with u = (x - shift) / scale.
///
/// The normalization keeps the Vandermonde system well conditioned when x
/// spans thousands of frames; it is transparent to callers of Eval().
class Polynomial {
 public:
  Polynomial() = default;

  /// Coefficients in ascending-power order over the normalized variable.
  Polynomial(Vec coeffs, double shift = 0.0, double scale = 1.0)
      : coeffs_(std::move(coeffs)), shift_(shift), scale_(scale) {}

  size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }
  const Vec& coeffs() const { return coeffs_; }
  double shift() const { return shift_; }
  double scale() const { return scale_; }

  /// Evaluates p(x) by Horner's rule.
  double Eval(double x) const;

  /// The derivative polynomial dp/dx (chain rule folds in 1/scale).
  Polynomial Derivative() const;

 private:
  Vec coeffs_;
  double shift_ = 0.0;
  double scale_ = 1.0;
};

/// Fitting backend selection.
enum class FitMethod {
  kQR,      ///< Householder QR on the Vandermonde matrix (default, stable)
  kNormal,  ///< normal equations + Cholesky (Eq. 2 literally; faster)
};

/// Fits a degree-`degree` polynomial to the samples (xs[i], ys[i]).
/// Requires xs.size() == ys.size() >= degree + 1 and non-degenerate xs.
/// Abscissae are centered and scaled internally for conditioning.
Result<Polynomial> FitPolynomial(const Vec& xs, const Vec& ys, int degree,
                                 FitMethod method = FitMethod::kQR);

/// A planar trajectory fitted as x(t), y(t) against the frame index.
struct FittedTrajectory {
  Polynomial x_of_t;
  Polynomial y_of_t;
  double rms_error = 0.0;  ///< combined per-point RMS residual

  /// Position on the fitted curve at frame t.
  Point2 Eval(double t) const { return {x_of_t.Eval(t), y_of_t.Eval(t)}; }

  /// Velocity (tangent) vector at frame t, px/frame.
  Vec2 Velocity(double t) const {
    return {x_of_t.Derivative().Eval(t), y_of_t.Derivative().Eval(t)};
  }
};

/// Fits a track's centroids with degree-`degree` polynomials in time.
/// Requires at least degree+1 points.
Result<FittedTrajectory> FitTrack(const Track& track, int degree,
                                  FitMethod method = FitMethod::kQR);

}  // namespace mivid

#endif  // MIVID_TRAJECTORY_POLYFIT_H_

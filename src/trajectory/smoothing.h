// Trajectory smoothing: feature extraction from the fitted curve.
//
// Sec. 3.2 of the paper models each trajectory with a least-squares
// polynomial whose derivative "represents the velocities of that vehicle
// at different time". This module applies that model as a denoising step:
// a track's centroids are replaced by the fitted curve evaluated at the
// same frames (piecewise, so long tracks with maneuvers are not forced
// through one global polynomial).

#ifndef MIVID_TRAJECTORY_SMOOTHING_H_
#define MIVID_TRAJECTORY_SMOOTHING_H_

#include <vector>

#include "common/status.h"
#include "trajectory/polyfit.h"
#include "trajectory/trajectory.h"

namespace mivid {

/// Smoothing parameters.
struct SmoothingOptions {
  int degree = 4;          ///< polynomial degree per piece (paper: 4)
  int piece_points = 16;   ///< centroids per fitted piece
  int piece_overlap = 4;   ///< shared points between adjacent pieces
};

/// Replaces the track's centroids by piecewise polynomial fits.
/// Tracks shorter than degree+1 points are returned unchanged. Bounding
/// boxes are preserved; only centroids move.
Result<Track> SmoothTrack(const Track& track,
                          const SmoothingOptions& options = {});

/// Smooths every track; tracks that fail to fit are passed through.
std::vector<Track> SmoothTracks(const std::vector<Track>& tracks,
                                const SmoothingOptions& options = {});

/// RMS displacement between the original and smoothed centroids (a
/// measure of how much noise the model removed).
double SmoothingResidual(const Track& original, const Track& smoothed);

}  // namespace mivid

#endif  // MIVID_TRAJECTORY_SMOOTHING_H_

#include "trajectory/smoothing.h"

#include <algorithm>
#include <cmath>

namespace mivid {

Result<Track> SmoothTrack(const Track& track,
                          const SmoothingOptions& options) {
  const int degree = std::max(1, options.degree);
  const size_t min_points = static_cast<size_t>(degree) + 1;
  if (track.points.size() < min_points) return track;

  const size_t piece =
      std::max<size_t>(options.piece_points, min_points);
  const size_t overlap =
      std::min<size_t>(options.piece_overlap, piece / 2);

  Track smoothed = track;  // keeps frames and bboxes
  // Fit overlapping pieces; each point takes its value from the piece
  // whose interior it falls in (overlap regions use the later piece's
  // leading half to avoid seams at piece boundaries).
  size_t start = 0;
  while (start < track.points.size()) {
    const size_t end = std::min(track.points.size(), start + piece);
    const size_t n = end - start;
    if (n < min_points) {
      // Tail too short for its own fit: refit the last full window.
      if (start == 0) break;
      start = track.points.size() >= piece ? track.points.size() - piece : 0;
      continue;
    }
    Track segment;
    segment.id = track.id;
    segment.points.assign(track.points.begin() + static_cast<long>(start),
                          track.points.begin() + static_cast<long>(end));
    Result<FittedTrajectory> fit = FitTrack(segment, degree);
    if (!fit.ok()) return fit.status();

    // Write back: skip the first `overlap/2` points of non-initial pieces
    // (they were already written by the previous piece's tail).
    const size_t write_from =
        start == 0 ? start : start + overlap / 2;
    for (size_t i = write_from; i < end; ++i) {
      smoothed.points[i].centroid =
          fit->Eval(static_cast<double>(track.points[i].frame));
    }
    if (end == track.points.size()) break;
    start = end - overlap;
  }
  return smoothed;
}

std::vector<Track> SmoothTracks(const std::vector<Track>& tracks,
                                const SmoothingOptions& options) {
  std::vector<Track> out;
  out.reserve(tracks.size());
  for (const auto& t : tracks) {
    Result<Track> s = SmoothTrack(t, options);
    out.push_back(s.ok() ? std::move(s).value() : t);
  }
  return out;
}

double SmoothingResidual(const Track& original, const Track& smoothed) {
  const size_t n = std::min(original.points.size(), smoothed.points.size());
  if (n == 0) return 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point2 d =
        original.points[i].centroid - smoothed.points[i].centroid;
    sq += d.SquaredNorm();
  }
  return std::sqrt(sq / static_cast<double>(n));
}

}  // namespace mivid
